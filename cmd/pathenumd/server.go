package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pathenum"
)

// queryRequest is the JSON body of POST /query.
type queryRequest struct {
	S        int64  `json:"s"`
	T        int64  `json:"t"`
	K        int    `json:"k"`
	Method   string `json:"method,omitempty"`   // auto | dfs | join
	Limit    uint64 `json:"limit,omitempty"`    // cap on enumerated results
	Paths    bool   `json:"paths,omitempty"`    // include path vertex lists
	Timeout  string `json:"timeout,omitempty"`  // e.g. "500ms"
	Parallel int    `json:"parallel,omitempty"` // intra-query fan-out (0 = sequential, capped at engine workers)
}

// queryResponse is the JSON reply.
type queryResponse struct {
	Count     uint64    `json:"count"`
	Completed bool      `json:"completed"`
	Plan      string    `json:"plan"`
	Cut       int       `json:"cut,omitempty"`
	Millis    float64   `json:"ms"`
	Paths     [][]int64 `json:"paths,omitempty"`
}

// server wires the engine behind an HTTP API. All handlers are safe for
// concurrent use: query state is per request.
type server struct {
	engine *pathenum.Engine
	// orig maps dense ids back to the input file's ids (nil = identity).
	orig    []int64
	toDense map[int64]pathenum.VertexID
	// maxPaths caps the number of materialized paths per response.
	maxPaths uint64
}

func newServer(engine *pathenum.Engine, orig []int64) *server {
	s := &server{engine: engine, orig: orig, maxPaths: 1000}
	if orig != nil {
		s.toDense = make(map[int64]pathenum.VertexID, len(orig))
		for dense, raw := range orig {
			s.toDense[raw] = pathenum.VertexID(dense)
		}
	}
	return s
}

func (s *server) dense(raw int64) (pathenum.VertexID, bool) {
	if s.toDense == nil {
		n := int64(s.engine.Graph().NumVertices())
		if raw < 0 || raw >= n {
			return 0, false
		}
		return pathenum.VertexID(raw), true
	}
	v, ok := s.toDense[raw]
	return v, ok
}

func (s *server) raw(dense pathenum.VertexID) int64 {
	if s.orig == nil {
		return int64(dense)
	}
	return s.orig[dense]
}

// rawPath maps a result path back to the input file's vertex ids.
func (s *server) rawPath(p pathenum.Path) []int64 {
	out := make([]int64, len(p))
	for i, v := range p {
		out[i] = s.raw(v)
	}
	return out
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /paths", s.handlePaths)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// ndjsonContentType marks the streaming responses: one JSON object per
// line, flushed as produced.
const ndjsonContentType = "application/x-ndjson"

// streamBuffer is how far enumeration may run ahead of the HTTP write on
// the streaming endpoints (Request.Buffer): enough to hide per-line
// encode/flush latency without buffering a result set.
const streamBuffer = 32

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// cacheStats is the wire form of the engine's frontier-cache counters.
type cacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`
	Capacity      int    `json:"capacity"`
	Bytes         int64  `json:"bytes"`
}

func toCacheStats(cs pathenum.FrontierCacheStats) cacheStats {
	return cacheStats{
		Hits:          cs.Hits,
		Misses:        cs.Misses,
		Evictions:     cs.Evictions,
		Invalidations: cs.Invalidations,
		Entries:       cs.Entries,
		Capacity:      cs.Capacity,
		Bytes:         cs.Bytes,
	}
}

// poolStats is the wire form of the engine's worker-pool occupancy: the
// utilization of the pool and the intra-query parallel shards in flight,
// so a parallel speedup is observable from the daemon, not just in
// benchmarks.
type poolStats struct {
	Workers         int     `json:"workers"`
	InFlightQueries int     `json:"inFlightQueries"`
	InFlightShards  int     `json:"inFlightShards"`
	Utilization     float64 `json:"utilization"`
}

func toPoolStats(ps pathenum.PoolStats) poolStats {
	return poolStats{
		Workers:         ps.Workers,
		InFlightQueries: ps.InFlightQueries,
		InFlightShards:  ps.InFlightShards,
		Utilization:     ps.Utilization(),
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	g := s.engine.Graph()
	writeJSON(w, http.StatusOK, map[string]any{
		"vertices":      g.NumVertices(),
		"edges":         g.NumEdges(),
		"avgDegree":     g.AvgDegree(),
		"epoch":         s.engine.Epoch(),
		"frontierCache": toCacheStats(s.engine.CacheStats()),
		"pool":          toPoolStats(s.engine.PoolStats()),
	})
}

// parseOptions converts wire-level method/limit/timeout/parallel to
// per-call option overrides (zero fields inherit the engine defaults at
// execution time; parallel is capped at the engine's worker count by the
// merge).
func parseOptions(method string, limit uint64, timeout string, parallel int) (pathenum.Options, error) {
	if parallel < 0 {
		return pathenum.Options{}, fmt.Errorf("bad parallel %d: must be >= 0", parallel)
	}
	opts := pathenum.Options{Limit: limit, Parallelism: parallel}
	switch method {
	case "", "auto":
		opts.Method = pathenum.Auto
	case "dfs":
		opts.Method = pathenum.DFS
	case "join":
		opts.Method = pathenum.Join
	default:
		return pathenum.Options{}, fmt.Errorf("unknown method %q", method)
	}
	if timeout != "" {
		d, err := time.ParseDuration(timeout)
		if err != nil {
			return pathenum.Options{}, fmt.Errorf("bad timeout: %v", err)
		}
		opts.Timeout = d
	}
	return opts, nil
}

// resolveQuery maps wire-level (raw) endpoints to a dense query.
func (s *server) resolveQuery(sRaw, tRaw int64, k int) (pathenum.Query, error) {
	src, ok := s.dense(sRaw)
	if !ok {
		return pathenum.Query{}, fmt.Errorf("unknown source vertex %d", sRaw)
	}
	dst, ok := s.dense(tRaw)
	if !ok {
		return pathenum.Query{}, fmt.Errorf("unknown target vertex %d", tRaw)
	}
	return pathenum.Query{S: src, T: dst, K: k}, nil
}

// parseQuery converts the wire request to a dense query plus per-call
// option overrides. Paths materialization is handled by the caller (it
// needs a response-local Emit closure).
func (s *server) parseQuery(req queryRequest) (pathenum.Query, pathenum.Options, error) {
	q, err := s.resolveQuery(req.S, req.T, req.K)
	if err != nil {
		return pathenum.Query{}, pathenum.Options{}, err
	}
	opts, err := parseOptions(req.Method, req.Limit, req.Timeout, req.Parallel)
	if err != nil {
		return pathenum.Query{}, pathenum.Options{}, err
	}
	return q, opts, nil
}

// parallelOverride applies the ?parallel= URL query parameter over the
// body's JSON field — a curl-friendly way to A/B the fan-out without
// editing the request body.
func parallelOverride(r *http.Request, body int) (int, error) {
	raw := r.URL.Query().Get("parallel")
	if raw == "" {
		return body, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad parallel %q: must be an integer >= 0", raw)
	}
	return v, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q, opts, err := s.parseQuery(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if opts.Parallelism, err = parallelOverride(r, opts.Parallelism); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	var paths [][]int64
	if req.Paths {
		// Clamp the enumeration itself, not just the stored slice: once the
		// response cannot grow there is no point materializing further
		// results, so the run stops (and reports Completed=false) at the cap.
		pathCap := req.Limit
		if pathCap == 0 || pathCap > s.maxPaths {
			pathCap = s.maxPaths
		}
		opts.Limit = pathCap
		opts.Emit = func(p []pathenum.VertexID) bool {
			paths = append(paths, s.rawPath(p))
			return true
		}
	}

	// Running through the engine (rather than a bare Enumerate on the
	// engine's graph) buys session buffer reuse, the engine oracle and
	// cancellation when the client disconnects.
	start := time.Now()
	res, err := s.engine.ExecuteWith(r.Context(), q, opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, "query failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Count:     res.Counters.Results,
		Completed: res.Completed,
		Plan:      res.Plan.Method.String(),
		Cut:       res.Plan.Cut,
		Millis:    float64(time.Since(start)) / float64(time.Millisecond),
		Paths:     paths,
	})
}

// pathLine is one NDJSON line of POST /paths: a single result path in the
// input file's vertex ids.
type pathLine struct {
	Path []int64 `json:"path"`
}

// doneLine is the trailing NDJSON line of POST /paths: the run summary a
// buffered /query response would have carried.
type doneLine struct {
	Done      bool    `json:"done"`
	Count     uint64  `json:"count"`
	Completed bool    `json:"completed"`
	Plan      string  `json:"plan,omitempty"`
	Cut       int     `json:"cut,omitempty"`
	Millis    float64 `json:"ms"`
}

// handlePaths streams result paths as NDJSON with per-path flush: the
// first line reaches the client while enumeration is still running, and a
// client disconnect cancels the enumeration through the request context —
// the streaming face of /query. The body is the /query wire format (the
// "paths" flag is implied); the final line is a {"done":true,...} summary.
// Unlike /query, results are not capped at the server's maxPaths: delivery
// is incremental, so the client bounds the response with "limit" or by
// closing the connection.
func (s *server) handlePaths(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q, opts, err := s.parseQuery(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if opts.Parallelism, err = parallelOverride(r, opts.Parallelism); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	sreq := pathenum.NewRequest(q)
	sreq.Method = opts.Method
	sreq.Limit = opts.Limit
	sreq.Timeout = opts.Timeout
	sreq.Parallelism = opts.Parallelism
	sreq.Buffer = streamBuffer
	var sum *pathenum.Result
	sreq.OnResult = func(res *pathenum.Result) { sum = res }

	start := time.Now()
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	wrote := false
	for p, serr := range s.engine.Stream(r.Context(), sreq) {
		if serr != nil {
			// Terminal errors surface before any path: pre-stream they are
			// a clean 400; mid-stream (not reachable today) they become a
			// trailing error line on the already-committed response.
			if !wrote {
				httpError(w, http.StatusBadRequest, "query failed: %v", serr)
			} else {
				_ = enc.Encode(map[string]string{"error": serr.Error()})
			}
			return
		}
		if !wrote {
			w.Header().Set("Content-Type", ndjsonContentType)
			wrote = true
		}
		if err := enc.Encode(pathLine{Path: s.rawPath(p)}); err != nil {
			return // client went away; the context cancels the enumeration
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if !wrote {
		w.Header().Set("Content-Type", ndjsonContentType)
	}
	line := doneLine{Done: true, Millis: float64(time.Since(start)) / float64(time.Millisecond)}
	if sum != nil {
		line.Count = sum.Counters.Results
		line.Completed = sum.Completed
		line.Plan = sum.Plan.Method.String()
		line.Cut = sum.Plan.Cut
	}
	_ = enc.Encode(line)
	if flusher != nil {
		flusher.Flush()
	}
}

// batchRequest is the JSON body of POST /batch: a list of queries answered
// against the shared engine, plus batch-wide option overrides. Responses
// carry counts only (no path materialization). Naive opts out of the
// shared-computation batch subsystem and fans the queries out
// independently (the ExecuteAllContext baseline).
type batchRequest struct {
	Queries []queryRequest `json:"queries"`
	Method  string         `json:"method,omitempty"`
	Limit   uint64         `json:"limit,omitempty"`
	Timeout string         `json:"timeout,omitempty"`
	Naive   bool           `json:"naive,omitempty"`
	// Stream switches the response to NDJSON with per-query flush: one
	// {"index":i,...} line the moment each query's group completes
	// (completion order, not input order), closed by a {"done":true,...}
	// line carrying the batch stats. Client disconnect cancels the
	// remaining work fail-fast. Mutually exclusive with Naive — streaming
	// delivery is a property of the shared-computation scheduler.
	Stream bool `json:"stream,omitempty"`
}

// batchStats is the wire form of the batch subsystem's per-batch report.
// BFSPassesRun is the count actually executed after frontier-cache hits
// (0 on a fully warm repeat batch); Epoch identifies the graph version
// the batch ran on.
type batchStats struct {
	Queries        int     `json:"queries"`
	Invalid        int     `json:"invalid,omitempty"`
	Unique         int     `json:"unique"`
	Deduped        int     `json:"deduped"`
	Groups         int     `json:"groups"`
	SharedSource   int     `json:"sharedSource"`
	SharedTarget   int     `json:"sharedTarget"`
	Singletons     int     `json:"singletons"`
	BFSPasses      int     `json:"bfsPasses"`
	BFSPassesNaive int     `json:"bfsPassesNaive"`
	BFSPassesSaved int     `json:"bfsPassesSaved"`
	BFSPassesRun   int     `json:"bfsPassesRun"`
	CacheHits      int     `json:"cacheHits"`
	CacheMisses    int     `json:"cacheMisses"`
	SharedBFSMs    float64 `json:"sharedBfsMs"`
	Epoch          uint64  `json:"epoch"`
}

// batchResult is one slot of the batch response; Error is set instead of
// the result fields when that query failed.
type batchResult struct {
	Count     uint64 `json:"count"`
	Completed bool   `json:"completed"`
	Plan      string `json:"plan,omitempty"`
	Error     string `json:"error,omitempty"`
}

// maxBatchQueries bounds one POST /batch body.
const maxBatchQueries = 10000

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "batch needs at least one query")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), maxBatchQueries)
		return
	}
	opts, err := parseOptions(req.Method, req.Limit, req.Timeout, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Stream && req.Naive {
		httpError(w, http.StatusBadRequest, "stream and naive are mutually exclusive")
		return
	}

	out := make([]batchResult, len(req.Queries))
	queries := make([]pathenum.Query, 0, len(req.Queries))
	slots := make([]int, 0, len(req.Queries))
	for i, qr := range req.Queries {
		// Options are batch-wide; reject per-query overrides loudly rather
		// than dropping them.
		if qr.Method != "" || qr.Limit != 0 || qr.Timeout != "" || qr.Paths || qr.Parallel != 0 {
			out[i].Error = "per-query method/limit/timeout/paths/parallel are not supported in /batch; set them batch-wide"
			continue
		}
		q, qerr := s.resolveQuery(qr.S, qr.T, qr.K)
		if qerr != nil {
			out[i].Error = qerr.Error()
			continue
		}
		queries = append(queries, q)
		slots = append(slots, i)
	}

	if req.Stream {
		s.streamBatch(w, r, opts, out, queries, slots)
		return
	}

	// The shared-computation batch subsystem is the default path: it
	// dedups identical queries and shares BFS frontiers across queries
	// with a common endpoint, reporting what it saved in the response
	// stats. "naive":true keeps the independent fan-out for comparison.
	start := time.Now()
	var (
		results []*pathenum.Result
		errs    []error
		stats   *pathenum.BatchStats
	)
	if req.Naive {
		results, errs = s.engine.ExecuteAllContext(r.Context(), queries, opts)
	} else {
		results, errs, stats = s.engine.ExecuteBatch(r.Context(), queries, opts)
	}
	for j, i := range slots {
		if errs[j] != nil {
			out[i].Error = errs[j].Error()
			continue
		}
		out[i] = batchResult{
			Count:     results[j].Counters.Results,
			Completed: results[j].Completed,
			Plan:      results[j].Plan.Method.String(),
		}
	}
	resp := map[string]any{
		"results": out,
		"ms":      float64(time.Since(start)) / float64(time.Millisecond),
	}
	if stats != nil {
		resp["stats"] = s.toBatchStats(stats, len(req.Queries), len(req.Queries)-len(queries))
	}
	writeJSON(w, http.StatusOK, resp)
}

// toBatchStats converts the subsystem stats to the wire form. The planner
// only saw the queries that survived wire-level resolution; totalQueries
// and rejected reconcile the report with the client's batch (rejected
// slots count as invalid).
func (s *server) toBatchStats(stats *pathenum.BatchStats, totalQueries, rejected int) batchStats {
	return batchStats{
		Queries:        totalQueries,
		Invalid:        stats.Invalid + rejected,
		Unique:         stats.Unique,
		Deduped:        stats.Deduped,
		Groups:         stats.Groups,
		SharedSource:   stats.SharedSourceGroups,
		SharedTarget:   stats.SharedTargetGroups,
		Singletons:     stats.Singletons,
		BFSPasses:      stats.BFSPasses,
		BFSPassesNaive: stats.BFSPassesNaive,
		BFSPassesSaved: stats.BFSPassesSaved,
		BFSPassesRun:   stats.BFSPassesRun,
		CacheHits:      stats.FrontierCacheHits,
		CacheMisses:    stats.FrontierCacheMisses,
		SharedBFSMs:    float64(stats.SharedBFS) / float64(time.Millisecond),
		Epoch:          s.engine.Epoch(),
	}
}

// batchLine is one NDJSON line of a streaming /batch response: the result
// (or error) of the query at the request's Index position, flushed as its
// group completes.
type batchLine struct {
	Index     int    `json:"index"`
	Count     uint64 `json:"count"`
	Completed bool   `json:"completed"`
	Plan      string `json:"plan,omitempty"`
	Error     string `json:"error,omitempty"`
}

// batchDoneLine closes a streaming /batch response.
type batchDoneLine struct {
	Done   bool        `json:"done"`
	Millis float64     `json:"ms"`
	Stats  *batchStats `json:"stats,omitempty"`
}

// streamBatch serves the NDJSON form of /batch: wire-rejected slots
// first, then one line per query in completion order via
// Engine.StreamBatch, then the done line with the batch stats. Write
// failures (client disconnect) abandon the stream, which cancels the
// remaining work through the request context with the scheduler's
// fail-fast semantics.
func (s *server) streamBatch(w http.ResponseWriter, r *http.Request, opts pathenum.Options, out []batchResult, queries []pathenum.Query, slots []int) {
	w.Header().Set("Content-Type", ndjsonContentType)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	rejected := 0
	for i := range out {
		if out[i].Error == "" {
			continue
		}
		rejected++
		if err := enc.Encode(batchLine{Index: i, Error: out[i].Error}); err != nil {
			return
		}
		flush()
	}

	start := time.Now()
	for item := range s.engine.StreamBatch(r.Context(), queries, opts) {
		if item.Index == -1 {
			done := batchDoneLine{Done: true, Millis: float64(time.Since(start)) / float64(time.Millisecond)}
			if item.Stats != nil {
				st := s.toBatchStats(item.Stats, len(out), rejected)
				done.Stats = &st
			}
			_ = enc.Encode(done)
			flush()
			return
		}
		line := batchLine{Index: slots[item.Index]}
		if item.Err != nil {
			line.Error = item.Err.Error()
		} else {
			line.Count = item.Result.Counters.Results
			line.Completed = item.Result.Completed
			line.Plan = item.Result.Plan.Method.String()
		}
		if err := enc.Encode(line); err != nil {
			return
		}
		flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
