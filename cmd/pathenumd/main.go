// Command pathenumd serves hop-constrained s-t path queries over HTTP — the
// online scenario (fraud screening, transaction monitoring) that motivates
// the paper's real-time requirement. The graph is loaded once; every query
// builds its own light-weight index, so requests parallelize freely.
//
//	pathenumd -graph g.txt -addr :8080
//	pathenumd -dataset ep -addr :8080      # serve a synthetic registry graph
//
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics                  # Prometheus exposition
//	curl -s localhost:8080/readyz                   # readiness + shed signals
//	curl -s -X POST localhost:8080/query \
//	     -d '{"s":3,"t":17,"k":6,"limit":10,"paths":true}'
//	curl -sN -X POST localhost:8080/paths \
//	     -d '{"s":3,"t":17,"k":6}'                 # NDJSON, one path per line
//	curl -s -X POST localhost:8080/batch \
//	     -d '{"queries":[{"s":3,"t":17,"k":6},{"s":4,"t":9,"k":5}],"limit":100}'
//	curl -sN -X POST localhost:8080/batch \
//	     -d '{"stream":true,"queries":[{"s":3,"t":17,"k":6},{"s":4,"t":9,"k":5}]}'
//	curl -s -X POST localhost:8080/insert \
//	     -d '{"edges":[{"from":3,"to":9}],"flush":true}'
//
// Every request runs through the engine's session pool (buffer reuse plus
// the optional distance oracle) and observes the request context, so a
// client disconnect cancels the enumeration mid-flight — including
// mid-NDJSON-stream. POST /paths is the streaming face of /query
// (Engine.Stream underneath): paths arrive line by line with per-line
// flush while enumeration is still running, closed by a {"done":true,...}
// summary. POST /batch runs the shared-computation batch subsystem —
// duplicate queries answered once, BFS frontiers shared across queries
// with a common endpoint — and reports what it saved in the response
// stats; add "stream":true for NDJSON with per-query flush as groups
// complete (Engine.StreamBatch), or "naive":true to force the independent
// per-query fan-out instead. Frontiers survive the batch in the engine's
// cross-batch cache (size it with -frontier-cache) and single queries
// both consult and — for hub-grade endpoints — deposit, so a repeat hub
// is served with zero BFS passes — watch bfsPassesRun and cacheHits in
// the /batch stats.
//
// -mem-budget caps engine memory (frontier cache + session scratch + join
// build sides) under one byte budget, e.g. -mem-budget 256MiB: the cache
// evicts on bytes, join-planned queries whose predicted build side does
// not fit degrade to the identical-result DFS plan, and pathenum_mem_*
// gauges expose the ledger on /metrics.
//
// Observability: GET /metrics exposes the engine and HTTP series in
// Prometheus text exposition — request latency and time-to-first-path
// histograms, per-stage timings (BFS, index build, join build/probe),
// frontier-cache and pool gauges, graph epoch and write-path lag. GET
// /healthz is pure liveness; GET /readyz reports readiness and returns
// 503 past the -shed-utilization pool saturation threshold — or past the
// -shed-oracle-lag rebuild-lag threshold — so a load balancer drains the
// replica. -access-log writes one JSON line per
// request (id, method, path, status, duration, plan, path count) to
// stderr. POST /insert and /flush drive the engine-owned write path over
// the wire (edges between existing vertices; the epoch advances and
// cached frontiers invalidate lazily).
//
// -shards N serves the graph through the sharded engine (internal/shard):
// the edge list splits into N edge-cut partitions, intra-shard queries
// delegate to per-shard engine spines, cross-shard queries join at the
// partition boundary, and pathenum_shard_* series land on the same
// /metrics scrape. -shard-degree-aware keeps hub out-edges co-resident.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"

	"pathenum"
	"pathenum/internal/gen"
	"pathenum/internal/server"
	"pathenum/internal/shard"
)

// parseBytes parses a human-friendly byte size: a plain integer is bytes;
// KiB/MiB/GiB (or the loose KB/MB/GB, K/M/G — all binary) scale it.
func parseBytes(s string) (int64, error) {
	num := strings.TrimSpace(s)
	var mult int64 = 1
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"GiB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MiB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KiB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"B", 1},
	} {
		if strings.HasSuffix(num, u.suffix) {
			num = strings.TrimSpace(strings.TrimSuffix(num, u.suffix))
			mult = u.mult
			break
		}
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	if v <= 0 || v > (1<<62)/mult {
		return 0, fmt.Errorf("size %q out of range", s)
	}
	return v * mult, nil
}

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list graph file")
		dataset   = flag.String("dataset", "", "registry dataset to generate instead of -graph")
		scale     = flag.Float64("scale", 1.0, "scale for -dataset")
		addr      = flag.String("addr", ":8080", "listen address")
		landmarks = flag.Int("landmarks", 8, "distance-oracle landmarks (0 disables)")
		fcache    = flag.Int("frontier-cache", 0, "frontier-cache entries (0 = default, negative disables)")
		memBudget = flag.String("mem-budget", "",
			"byte budget for cache + scratch + join build sides, e.g. 256MiB (empty = unlimited)")
		accessLog = flag.Bool("access-log", false, "write a JSON access-log line per request to stderr")
		shedUtil  = flag.Float64("shed-utilization", 0,
			"pool utilization at which /readyz sheds (0 = default, negative disables)")
		shedOracleLag = flag.Duration("shed-oracle-lag", 0,
			"oracle rebuild lag past which /readyz sheds with 503 (0 disables)")
		shards = flag.Int("shards", 1,
			"partition the graph into N edge-cut shards with per-shard engines")
		shardDegreeAware = flag.Bool("shard-degree-aware", false,
			"use degree-aware partitioning (hub out-edges co-resident) instead of hashed ownership")
	)
	flag.Parse()

	var (
		g    *pathenum.Graph
		orig []int64
		err  error
	)
	switch {
	case *graphPath != "":
		f, ferr := os.Open(*graphPath)
		if ferr != nil {
			log.Fatal(ferr)
		}
		g, orig, err = pathenum.ReadGraph(f)
		f.Close()
	case *dataset != "":
		var d gen.Dataset
		d, err = gen.Lookup(*dataset)
		if err == nil {
			g = d.Scale(*scale).Build()
		}
	default:
		err = fmt.Errorf("one of -graph or -dataset is required")
	}
	if err != nil {
		log.Fatal("pathenumd: ", err)
	}

	cfg := pathenum.EngineConfig{Workers: 8, FrontierCache: *fcache}
	if *memBudget != "" {
		n, perr := parseBytes(*memBudget)
		if perr != nil {
			log.Fatal("pathenumd: -mem-budget: ", perr)
		}
		cfg.MemoryBudgetBytes = n
	}
	if *landmarks > 0 {
		oracle, oerr := pathenum.BuildOracle(g, *landmarks)
		if oerr != nil {
			log.Fatal("pathenumd: oracle: ", oerr)
		}
		cfg.Oracle = oracle
		// Publishing inserts hand oracle reconstruction to the engine's
		// background worker; without this the first write would drop the
		// oracle for the rest of the process lifetime.
		cfg.OracleLandmarks = *landmarks
	}
	var engine server.Engine
	if *shards > 1 {
		strategy := shard.Hash
		if *shardDegreeAware {
			strategy = shard.DegreeAware
		}
		sharded, serr := shard.New(g, *shards, shard.Config{Strategy: strategy, Engine: cfg})
		if serr != nil {
			log.Fatal("pathenumd: ", serr)
		}
		log.Printf("pathenumd: %d shards, %d cut edges", sharded.Shards(), sharded.CutEdges())
		engine = sharded
	} else {
		single, serr := pathenum.NewEngine(g, cfg)
		if serr != nil {
			log.Fatal("pathenumd: ", serr)
		}
		engine = single
	}

	scfg := server.Config{ShedUtilization: *shedUtil, ShedOracleLag: *shedOracleLag}
	if *accessLog {
		scfg.AccessLog = os.Stderr
	}
	srv := server.New(engine, orig, scfg)
	log.Printf("pathenumd: serving %v on %s", g, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
