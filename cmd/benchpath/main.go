// Command benchpath regenerates the paper's tables and figures on the
// synthetic dataset registry and prints the reports recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	benchpath table3                 # one experiment
//	benchpath table3 fig6 fig13      # several
//	benchpath all                    # everything
//	benchpath -scale 0.2 -queries 30 -timelimit 500ms table3
//	benchpath -plan join -json stream   # join-planned streaming, JSON report
//
// Experiments: table3 table4 table5 table6 table7 fig6 fig7 fig8 fig9
// fig10 fig12 fig13 fig16 fig17 fig18 ext batch batch2 cache stream
// parallel shard mem
// (fig10 covers figure 11; fig13 covers figures 14 and 15; ext is this
// repository's extension ablation; batch compares the shared-computation
// batch subsystem against the naive per-query fan-out on shared-endpoint
// workloads; batch2 runs a cold hub-to-hub grid through the two-sided
// planner — one BFS per distinct endpoint; cache repeats a shared-hub batch to show the second call
// served from the cross-batch frontier cache with zero BFS passes;
// stream measures time-to-first-path of the pull-based path stream
// against full enumeration — the real-time delivery metric; -plan forces
// the enumeration plan there, so `stream -plan join` isolates the
// tuple-at-a-time join's first-path latency, and the -json report
// carries the plan kind per row; parallel sweeps intra-query fan-out —
// Options.Parallelism doubling 1, 2, ... up to -parallel — reporting
// drain speedup and first-path latency per fan-out; shard runs
// partition-aware intra and cross query classes through the sharded
// engine at P=1/2/4 against an unsharded baseline on the same graph —
// the P=1 overhead column prices the routing layer, the cross rows the
// boundary join; mem sweeps EngineConfig.MemoryBudgetBytes from
// unbudgeted down to a pathological 1 byte, hard-erroring if any
// budgeted run's path counts diverge from the unbudgeted baseline or
// the ledger ever exceeds the effective budget — the report carries
// peak resident bytes, join-to-DFS fallbacks and refused cache
// deposits per budget point).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pathenum/internal/bench"
)

// renderable is what every experiment returns.
type renderable interface{ Render() string }

// experiments maps names to runners in paper order.
var experiments = []struct {
	name string
	run  func(bench.Config) (renderable, error)
}{
	{"table3", func(c bench.Config) (renderable, error) { return bench.Table3(c) }},
	{"table4", func(c bench.Config) (renderable, error) { return bench.Table4(c) }},
	{"table5", func(c bench.Config) (renderable, error) { return bench.Table5(c) }},
	{"table6", func(c bench.Config) (renderable, error) { return bench.Table6(c) }},
	{"table7", func(c bench.Config) (renderable, error) { return bench.Table7(c) }},
	{"fig6", func(c bench.Config) (renderable, error) { return bench.Fig6(c) }},
	{"fig7", func(c bench.Config) (renderable, error) { return bench.Fig7(c) }},
	{"fig8", func(c bench.Config) (renderable, error) { return bench.Fig8(c) }},
	{"fig9", func(c bench.Config) (renderable, error) { return bench.Fig9(c) }},
	{"fig10", func(c bench.Config) (renderable, error) { return bench.Fig10(c) }},
	{"fig12", func(c bench.Config) (renderable, error) { return bench.Fig12(c) }},
	{"fig13", func(c bench.Config) (renderable, error) { return bench.VaryK(c) }},
	{"fig16", func(c bench.Config) (renderable, error) { return bench.Fig16(c) }},
	{"fig17", func(c bench.Config) (renderable, error) { return bench.Fig17(c) }},
	{"fig18", func(c bench.Config) (renderable, error) { return bench.Fig18(c) }},
	{"ext", func(c bench.Config) (renderable, error) { return bench.Extensions(c) }},
	{"batch", func(c bench.Config) (renderable, error) { return bench.Batch(c) }},
	{"batch2", func(c bench.Config) (renderable, error) { return bench.BatchTwoSided(c) }},
	{"cache", func(c bench.Config) (renderable, error) { return bench.Cache(c) }},
	{"stream", func(c bench.Config) (renderable, error) { return bench.Stream(c) }},
	{"parallel", func(c bench.Config) (renderable, error) { return bench.Parallel(c) }},
	{"shard", func(c bench.Config) (renderable, error) { return bench.Shard(c) }},
	{"mem", func(c bench.Config) (renderable, error) { return bench.Mem(c) }},
}

func main() {
	var (
		scale     = flag.Float64("scale", 1.0, "dataset scale factor")
		queries   = flag.Int("queries", 100, "queries per query set")
		k         = flag.Int("k", 6, "default hop constraint")
		timeLimit = flag.Duration("timelimit", 2*time.Second, "per-query time limit")
		datasets  = flag.String("datasets", "", "comma-separated dataset subset")
		seed      = flag.Int64("seed", 42, "workload seed")
		plan      = flag.String("plan", "auto", "forced plan for plan-aware experiments (auto|dfs|join)")
		parallel  = flag.Int("parallel", 4, "maximum intra-query fan-out for the parallel experiment")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON instead of rendered tables")
	)
	flag.Parse()
	names := flag.Args()
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchpath [flags] <experiment>... | all")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(names2(), " "))
		os.Exit(2)
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Queries = *queries
	cfg.K = *k
	cfg.TimeLimit = *timeLimit
	cfg.Seed = *seed
	cfg.Plan = *plan
	cfg.Parallel = *parallel
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	if len(names) == 1 && names[0] == "all" {
		names = names2()
	}
	for _, name := range names {
		if err := runOne(name, cfg, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchpath:", err)
			os.Exit(1)
		}
	}
}

func names2() []string {
	out := make([]string, len(experiments))
	for i, e := range experiments {
		out[i] = e.name
	}
	return out
}

func runOne(name string, cfg bench.Config, jsonOut bool) error {
	for _, e := range experiments {
		if e.name != name {
			continue
		}
		start := time.Now()
		res, err := e.run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if jsonOut {
			// One self-describing JSON document per experiment: the shared
			// schema/meta block (bench.SchemaVersion — the same schema
			// cmd/loadpath emits), then the result struct verbatim (e.g. the
			// stream rows carry the requested plan and the executed join/dfs
			// plan counts) under its name.
			out, err := json.MarshalIndent(struct {
				Experiment string        `json:"experiment"`
				Meta       bench.RunMeta `json:"meta"`
				ElapsedMs  int64         `json:"elapsed_ms"`
				Result     interface{}   `json:"result"`
			}{Experiment: name, Meta: cfg.Meta(), ElapsedMs: time.Since(start).Milliseconds(), Result: res}, "", "  ")
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println(string(out))
			return nil
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}
	return fmt.Errorf("unknown experiment %q (known: %s)", name, strings.Join(names2(), " "))
}
