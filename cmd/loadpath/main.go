// Command loadpath drives a pathenumd instance with a closed-loop mixed
// read/write workload and reports throughput and latency percentiles per
// request class — the serving-side complement to cmd/benchpath's
// algorithmic experiments.
//
//	loadpath -selfserve -dataset ep -scale 0.3 -clients 8 -rps 50 \
//	         -warmup 2s -duration 10s -out BENCH_load.json
//	loadpath -addr http://localhost:8080 -clients 16 -duration 30s
//
// N concurrent clients each loop: draw a request class from the
// -mix CDF (query = POST /query, stream = POST /paths drained to the
// done line, batch = POST /batch, insert = POST /insert), issue it, and
// record the end-to-end latency — closed loop, so a slow server sheds
// offered load instead of queueing unboundedly. -rps adds an open-loop
// ceiling via a shared token bucket (0 = unthrottled). The -warmup
// phase runs the same traffic without recording, so caches, pools and
// the JIT-ish first-touch costs settle before measurement.
//
// -selfserve starts the real HTTP layer (internal/server, the same
// handlers pathenumd mounts) on a loopback listener inside this
// process — a hermetic single-binary smoke test for CI. Query endpoints
// are sampled with the paper's workload generator (§7.1 high-degree
// settings) when self-serving; against a remote -addr the driver falls
// back to uniform vertex pairs read from /stats.
//
// The JSON report (-out, "-" for stdout) carries the shared
// pathenum-bench/v1 meta block (schema version, dataset, GOMAXPROCS)
// plus, per class and in total: request count, error count, throughput,
// and p50/p95/p99/p999/mean/max latency. -fail-on-error exits non-zero
// if any measured request failed — the CI smoke gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathenum"
	"pathenum/internal/bench"
	"pathenum/internal/gen"
	"pathenum/internal/obs"
	"pathenum/internal/server"
	"pathenum/internal/workload"
)

type driverConfig struct {
	addr      string
	selfServe bool
	graphPath string
	dataset   string
	scale     float64
	landmarks int

	clients  int
	rps      float64
	warmup   time.Duration
	duration time.Duration
	mixSpec  string
	k        int
	batch    int
	limit    uint64
	seed     int64

	out         string
	failOnError bool
}

// classStats accumulates one request class. Updates are atomics so the
// clients never serialize on a results lock.
type classStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	hist     *obs.Histogram
}

type classReport struct {
	Class         string  `json:"class"`
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	P999Ms        float64 `json:"p999_ms"`
	MeanMs        float64 `json:"mean_ms"`
	MaxMs         float64 `json:"max_ms"`
}

type loadReport struct {
	Meta       bench.RunMeta `json:"meta"`
	Mix        string        `json:"mix"`
	Clients    int           `json:"clients"`
	TargetRPS  float64       `json:"target_rps,omitempty"`
	WarmupMs   int64         `json:"warmup_ms"`
	MeasuredMs int64         `json:"measured_ms"`
	Classes    []classReport `json:"classes"`
	Total      classReport   `json:"total"`
}

func main() {
	var cfg driverConfig
	flag.StringVar(&cfg.addr, "addr", "", "base URL of a running pathenumd (e.g. http://localhost:8080)")
	flag.BoolVar(&cfg.selfServe, "selfserve", false, "serve an in-process pathenumd on a loopback listener")
	flag.StringVar(&cfg.graphPath, "graph", "", "edge-list graph file for -selfserve")
	flag.StringVar(&cfg.dataset, "dataset", "ep", "registry dataset for -selfserve (when -graph is unset)")
	flag.Float64Var(&cfg.scale, "scale", 1.0, "scale for -dataset")
	flag.IntVar(&cfg.landmarks, "landmarks", 0, "distance-oracle landmarks for -selfserve (0 disables)")
	flag.IntVar(&cfg.clients, "clients", 8, "concurrent closed-loop clients")
	flag.Float64Var(&cfg.rps, "rps", 0, "target request rate ceiling (0 = unthrottled)")
	flag.DurationVar(&cfg.warmup, "warmup", 2*time.Second, "warmup phase (traffic not recorded)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measured phase")
	flag.StringVar(&cfg.mixSpec, "mix", "query=60,stream=25,batch=10,insert=5",
		"request-class weights (classes: query stream batch insert)")
	flag.IntVar(&cfg.k, "k", 6, "hop constraint for generated queries")
	flag.IntVar(&cfg.batch, "batch", 4, "queries per /batch request")
	var limit int
	flag.IntVar(&limit, "limit", 1000, "per-query result cap")
	flag.Int64Var(&cfg.seed, "seed", 42, "workload seed")
	flag.StringVar(&cfg.out, "out", "BENCH_load.json", `JSON report path ("-" for stdout)`)
	flag.BoolVar(&cfg.failOnError, "fail-on-error", false, "exit non-zero if any measured request failed")
	flag.Parse()
	cfg.limit = uint64(limit)

	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadpath:", err)
		os.Exit(1)
	}
	if cfg.failOnError && rep.Total.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadpath: %d of %d measured requests failed\n",
			rep.Total.Errors, rep.Total.Requests)
		os.Exit(1)
	}
}

// target abstracts where the traffic goes and what ids are valid there.
type target struct {
	base    string
	client  *http.Client
	pairs   []workload.Query // sampled (s,t) endpoint pairs, external ids
	ids     []int64          // external id per internal vertex (identity when nil orig)
	cleanup func()
}

// run executes the configured load and returns the report. It is the
// whole driver behind flag parsing, so tests exercise it directly.
func run(cfg driverConfig) (*loadReport, error) {
	if cfg.clients <= 0 {
		return nil, fmt.Errorf("-clients must be positive")
	}
	if cfg.duration <= 0 {
		return nil, fmt.Errorf("-duration must be positive")
	}
	mix, err := workload.ParseMix(cfg.mixSpec)
	if err != nil {
		return nil, err
	}
	for _, c := range mix.Classes() {
		switch c.Name {
		case "query", "stream", "batch", "insert":
		default:
			return nil, fmt.Errorf("unknown mix class %q (want query|stream|batch|insert)", c.Name)
		}
	}

	tgt, err := resolveTarget(cfg)
	if err != nil {
		return nil, err
	}
	if tgt.cleanup != nil {
		defer tgt.cleanup()
	}

	stats := map[string]*classStats{}
	for _, c := range mix.Classes() {
		stats[c.Name] = &classStats{hist: obs.NewHistogram()}
	}
	total := &classStats{hist: obs.NewHistogram()}

	// Open-loop ceiling: a token bucket refilled at -rps, capacity one
	// burst per client so a stalled scrape doesn't bank unbounded credit.
	var tokens chan struct{}
	stopPacer := make(chan struct{})
	if cfg.rps > 0 {
		tokens = make(chan struct{}, cfg.clients)
		interval := time.Duration(float64(time.Second) / cfg.rps)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stopPacer:
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default:
					}
				}
			}
		}()
	}

	start := time.Now()
	measureStart := start.Add(cfg.warmup)
	end := measureStart.Add(cfg.duration)
	var wg sync.WaitGroup
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(id)*7919))
			for {
				now := time.Now()
				if !now.Before(end) {
					return
				}
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(end.Sub(now)):
						return
					}
				}
				class := mix.Pick(rng.Float64())
				t0 := time.Now()
				err := issue(tgt, cfg, rng, class)
				elapsed := time.Since(t0)
				if t0.After(measureStart) {
					cs := stats[class]
					cs.requests.Add(1)
					cs.hist.Observe(elapsed)
					total.requests.Add(1)
					total.hist.Observe(elapsed)
					if err != nil {
						cs.errors.Add(1)
						total.errors.Add(1)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(stopPacer)
	measured := end.Sub(measureStart)

	rep := &loadReport{
		Meta:       buildMeta(cfg),
		Mix:        mix.String(),
		Clients:    cfg.clients,
		TargetRPS:  cfg.rps,
		WarmupMs:   cfg.warmup.Milliseconds(),
		MeasuredMs: measured.Milliseconds(),
		Total:      summarize("total", total, measured),
	}
	for _, c := range mix.Classes() {
		rep.Classes = append(rep.Classes, summarize(c.Name, stats[c.Name], measured))
	}

	if err := writeReport(cfg, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

func buildMeta(cfg driverConfig) bench.RunMeta {
	m := bench.NewRunMeta()
	switch {
	case cfg.graphPath != "":
		m.Datasets = []string{cfg.graphPath}
	case cfg.selfServe:
		m.Datasets = []string{cfg.dataset}
		m.Scale = cfg.scale
	}
	m.K = cfg.k
	m.Seed = cfg.seed
	return m
}

func summarize(name string, cs *classStats, window time.Duration) classReport {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	r := classReport{
		Class:    name,
		Requests: cs.requests.Load(),
		Errors:   cs.errors.Load(),
		P50Ms:    ms(cs.hist.Quantile(0.5)),
		P95Ms:    ms(cs.hist.Quantile(0.95)),
		P99Ms:    ms(cs.hist.Quantile(0.99)),
		P999Ms:   ms(cs.hist.Quantile(0.999)),
		MeanMs:   ms(cs.hist.Mean()),
		MaxMs:    ms(cs.hist.Max()),
	}
	if window > 0 {
		r.ThroughputRPS = float64(r.Requests) / window.Seconds()
	}
	return r
}

func writeReport(cfg driverConfig, rep *loadReport) error {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if cfg.out == "-" || cfg.out == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(cfg.out, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadpath: %d requests (%d errors) in %v -> %s\n",
		rep.Total.Requests, rep.Total.Errors, time.Duration(rep.MeasuredMs)*time.Millisecond, cfg.out)
	return nil
}

// resolveTarget prepares the traffic destination: either an in-process
// server on a loopback listener (-selfserve) or a remote base URL.
func resolveTarget(cfg driverConfig) (*target, error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.clients * 2,
		MaxIdleConnsPerHost: cfg.clients * 2,
	}}
	if !cfg.selfServe {
		if cfg.addr == "" {
			return nil, fmt.Errorf("one of -addr or -selfserve is required")
		}
		return remoteTarget(strings.TrimRight(cfg.addr, "/"), client)
	}

	var (
		g    *pathenum.Graph
		orig []int64
		err  error
	)
	if cfg.graphPath != "" {
		f, ferr := os.Open(cfg.graphPath)
		if ferr != nil {
			return nil, ferr
		}
		g, orig, err = pathenum.ReadGraph(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	} else {
		d, derr := gen.Lookup(cfg.dataset)
		if derr != nil {
			return nil, derr
		}
		g = d.Scale(cfg.scale).Build()
	}

	ecfg := pathenum.EngineConfig{Workers: runtime.GOMAXPROCS(0)}
	if cfg.landmarks > 0 {
		oracle, oerr := pathenum.BuildOracle(g, cfg.landmarks)
		if oerr != nil {
			return nil, oerr
		}
		ecfg.Oracle = oracle
		// Keep the oracle alive under an insert-bearing mix: publishing
		// inserts hand reconstruction to the engine's background worker
		// instead of dropping the oracle for good (or stalling the write).
		ecfg.OracleLandmarks = cfg.landmarks
	}
	engine, err := pathenum.NewEngine(g, ecfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := &http.Server{Handler: server.New(engine, orig, server.Config{}).Handler()}
	go hsrv.Serve(ln)

	// Endpoint pairs from the paper's generator; a partial sample is fine
	// as long as something came back (tiny scaled graphs).
	want := cfg.clients * 32
	if want < 256 {
		want = 256
	}
	pairs, err := workload.Generate(g, workload.Options{
		Setting: workload.HighHigh,
		Count:   want,
		Seed:    cfg.seed,
	})
	if len(pairs) == 0 {
		return nil, fmt.Errorf("sampling query endpoints: %w", err)
	}
	ids := orig
	if ids == nil {
		ids = make([]int64, g.NumVertices())
		for i := range ids {
			ids[i] = int64(i)
		}
	}
	t := &target{
		base:   "http://" + ln.Addr().String(),
		client: client,
		pairs:  pairs,
		ids:    ids,
		cleanup: func() {
			hsrv.Close()
		},
	}
	return t, nil
}

// remoteTarget learns the vertex count from /stats and samples uniform
// pairs — the driver has no graph to run the degree-aware generator on.
func remoteTarget(base string, client *http.Client) (*target, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil, fmt.Errorf("probing %s/stats: %w", base, err)
	}
	defer resp.Body.Close()
	var stats struct {
		Vertices int `json:"vertices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, fmt.Errorf("decoding /stats: %w", err)
	}
	if stats.Vertices < 2 {
		return nil, fmt.Errorf("target graph too small (%d vertices)", stats.Vertices)
	}
	ids := make([]int64, stats.Vertices)
	for i := range ids {
		ids[i] = int64(i)
	}
	return &target{base: base, client: client, ids: ids}, nil
}

// pair draws one (s,t) endpoint pair in external ids.
func (t *target) pair(rng *rand.Rand) (int64, int64) {
	if len(t.pairs) > 0 {
		p := t.pairs[rng.Intn(len(t.pairs))]
		return t.ids[p.S], t.ids[p.T]
	}
	s := t.ids[rng.Intn(len(t.ids))]
	x := t.ids[rng.Intn(len(t.ids))]
	for x == s {
		x = t.ids[rng.Intn(len(t.ids))]
	}
	return s, x
}

// issue sends one request of the given class and fully consumes the
// response — closed loop, so the next iteration starts only after the
// server finished this one.
func issue(tgt *target, cfg driverConfig, rng *rand.Rand, class string) error {
	switch class {
	case "query":
		s, t := tgt.pair(rng)
		return postJSON(tgt, "/query", map[string]any{"s": s, "t": t, "k": cfg.k, "limit": cfg.limit})
	case "stream":
		s, t := tgt.pair(rng)
		return drainStream(tgt, map[string]any{"s": s, "t": t, "k": cfg.k, "limit": cfg.limit})
	case "batch":
		qs := make([]map[string]any, cfg.batch)
		for i := range qs {
			s, t := tgt.pair(rng)
			qs[i] = map[string]any{"s": s, "t": t, "k": cfg.k}
		}
		return postJSON(tgt, "/batch", map[string]any{"queries": qs, "limit": cfg.limit})
	case "insert":
		from := tgt.ids[rng.Intn(len(tgt.ids))]
		to := tgt.ids[rng.Intn(len(tgt.ids))]
		return postJSON(tgt, "/insert", map[string]any{
			"edges": []map[string]any{{"from": from, "to": to}},
		})
	}
	return fmt.Errorf("unknown class %q", class)
}

func postJSON(tgt *target, path string, body any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := tgt.client.Post(tgt.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", path, resp.StatusCode)
	}
	return nil
}

// drainStream consumes an NDJSON /paths response to its done line — the
// latency of the class is time-to-last-path, the full delivery.
func drainStream(tgt *target, body any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := tgt.client.Post(tgt.base+"/paths", "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("/paths: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sawDone := false
	for sc.Scan() {
		var line struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("/paths: bad line: %w", err)
		}
		if line.Done {
			sawDone = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawDone {
		return fmt.Errorf("/paths: stream ended without done line")
	}
	return nil
}
