package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pathenum/internal/bench"
)

// TestRunSelfServe drives the in-process server for a short burst and
// checks the report: every configured class saw traffic, no errors, the
// JSON on disk round-trips with the shared schema version.
func TestRunSelfServe(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	rep, err := run(driverConfig{
		selfServe: true,
		dataset:   "ep",
		scale:     0.2,
		clients:   8,
		warmup:    200 * time.Millisecond,
		duration:  time.Second,
		mixSpec:   "query=6,stream=2,batch=1,insert=1",
		k:         4,
		batch:     3,
		limit:     50,
		seed:      42,
		out:       out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Errors != 0 {
		t.Fatalf("measured errors = %d of %d", rep.Total.Errors, rep.Total.Requests)
	}
	if rep.Total.Requests == 0 {
		t.Fatal("no measured requests")
	}
	if rep.Meta.Schema != bench.SchemaVersion || rep.Meta.GOMAXPROCS == 0 {
		t.Fatalf("meta = %+v", rep.Meta)
	}
	classes := map[string]classReport{}
	for _, c := range rep.Classes {
		classes[c.Class] = c
	}
	for _, name := range []string{"query", "stream", "batch", "insert"} {
		c, ok := classes[name]
		if !ok {
			t.Fatalf("class %s missing from report", name)
		}
		if c.Requests == 0 {
			t.Errorf("class %s saw no traffic in 1s at weight > 0", name)
		}
		if c.Requests > 0 && (c.P50Ms <= 0 || c.MaxMs < c.P50Ms || c.P999Ms < c.P50Ms) {
			t.Errorf("class %s has incoherent latencies: %+v", name, c)
		}
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk loadReport
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatalf("report on disk is not JSON: %v", err)
	}
	if onDisk.Total.Requests != rep.Total.Requests || onDisk.Meta.Schema != bench.SchemaVersion {
		t.Fatalf("on-disk report diverges: %+v", onDisk.Total)
	}
}

// TestRunThrottled: a low RPS ceiling holds — the closed loop must not
// exceed the open-loop budget by more than the burst allowance.
func TestRunThrottled(t *testing.T) {
	rep, err := run(driverConfig{
		selfServe: true,
		dataset:   "ep",
		scale:     0.2,
		clients:   4,
		rps:       20,
		warmup:    100 * time.Millisecond,
		duration:  time.Second,
		mixSpec:   "query=1",
		k:         4,
		batch:     1,
		limit:     10,
		seed:      7,
		out:       filepath.Join(t.TempDir(), "out.json"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 20 rps over 1s, plus the per-client burst capacity (4) and timer
	// slack: anything way past that means the pacer is not engaged.
	if rep.Total.Requests > 35 {
		t.Fatalf("throttled run issued %d requests, want ~20", rep.Total.Requests)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	for _, cfg := range []driverConfig{
		{selfServe: true, dataset: "ep", clients: 0, duration: time.Second, mixSpec: "query=1"},
		{selfServe: true, dataset: "ep", clients: 1, duration: 0, mixSpec: "query=1"},
		{selfServe: true, dataset: "ep", clients: 1, duration: time.Second, mixSpec: "query=1,delete=1"},
		{clients: 1, duration: time.Second, mixSpec: "query=1"}, // no addr, no selfserve
	} {
		if _, err := run(cfg); err == nil {
			t.Errorf("run(%+v) should fail", cfg)
		}
	}
}
