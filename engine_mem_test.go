package pathenum

import (
	"context"
	"testing"

	"pathenum/internal/core"
	"pathenum/internal/gen"
)

// TestEngineMemBudgetPathEquality: the budget changes residency and
// plans, never answers — the same workload through budgets from tight to
// a pathological 1 byte returns exactly the unbudgeted counts, across
// several sampled workloads.
func TestEngineMemBudgetPathEquality(t *testing.T) {
	g := engineGraph()
	scratch := int64(4) * core.SessionScratchBytes(g.NumVertices())
	for _, seed := range []int64{7, 19, 101} {
		queries := engineQueries(24, seed, g.NumVertices())
		base, err := NewEngine(g, EngineConfig{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.CountAll(queries)
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []int64{8 * scratch, scratch + 64, 1} {
			e, err := NewEngine(g, EngineConfig{Workers: 4, MemoryBudgetBytes: budget})
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.CountAll(queries)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d budget %d query %d (%v): budgeted %d, unbudgeted %d",
						seed, budget, i, queries[i], got[i], want[i])
				}
			}
			if ms := e.MemStats(); ms.UsedBytes > ms.BudgetBytes {
				t.Fatalf("seed %d budget %d: ledger %d exceeds effective budget %d",
					seed, budget, ms.UsedBytes, ms.BudgetBytes)
			}
		}
	}
}

// TestEngineMemJoinFallback: a forced-join query whose predicted build
// side cannot fit the budget degrades to the DFS plan — same answer,
// MemFallback flagged, fallback counter incremented — instead of
// erroring or materializing past the limit.
func TestEngineMemJoinFallback(t *testing.T) {
	g := gen.Layered(8, 4) // dense layered graph: join builds a real side
	q := Query{S: 0, T: 1, K: 6}

	free, err := NewEngine(g, EngineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	unbudgeted, err := free.ExecuteWith(context.Background(), q, Options{Method: Join})
	if err != nil {
		t.Fatal(err)
	}
	if unbudgeted.Plan.Method != Join || unbudgeted.MemFallback {
		t.Fatalf("unbudgeted forced join ran %v (fallback=%v), want Join", unbudgeted.Plan.Method, unbudgeted.MemFallback)
	}

	// A 1-byte request floors at the mandatory scratch, leaving zero
	// headroom for the build class: every join must fall back.
	capped, err := NewEngine(g, EngineConfig{Workers: 1, MemoryBudgetBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := capped.ExecuteWith(context.Background(), q, Options{Method: Join})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Method != DFS || !res.MemFallback {
		t.Fatalf("capped forced join ran %v (fallback=%v), want DFS fallback", res.Plan.Method, res.MemFallback)
	}
	if res.Counters.Results != unbudgeted.Counters.Results {
		t.Fatalf("fallback returned %d paths, join %d — fallback changed answers",
			res.Counters.Results, unbudgeted.Counters.Results)
	}
	if ms := capped.MemStats(); ms.JoinFallbacks == 0 {
		t.Fatalf("MemStats.JoinFallbacks = 0 after a demoted join: %+v", ms)
	}
}

// TestEngineMemStats: the ledger splits cleanly by class, the scratch
// charge matches the worker pool, and usage respects the effective
// budget.
func TestEngineMemStats(t *testing.T) {
	g := engineGraph()
	workers := 4
	scratch := int64(workers) * core.SessionScratchBytes(g.NumVertices())
	e, err := NewEngine(g, EngineConfig{Workers: workers, MemoryBudgetBytes: 4 * scratch})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CountAll(engineQueries(16, 3, g.NumVertices())); err != nil {
		t.Fatal(err)
	}
	ms := e.MemStats()
	if ms.BudgetBytes != 4*scratch {
		t.Fatalf("BudgetBytes = %d, want %d", ms.BudgetBytes, 4*scratch)
	}
	if ms.ScratchBytes != scratch {
		t.Fatalf("ScratchBytes = %d, want %d (%d workers)", ms.ScratchBytes, scratch, workers)
	}
	if sum := ms.CacheBytes + ms.ScratchBytes + ms.BuildBytes; ms.UsedBytes != sum {
		t.Fatalf("UsedBytes %d != class sum %d (%+v)", ms.UsedBytes, sum, ms)
	}
	if ms.UsedBytes > ms.BudgetBytes {
		t.Fatalf("UsedBytes %d exceeds budget %d", ms.UsedBytes, ms.BudgetBytes)
	}

	// Unbudgeted engines report a zero ledger.
	free, err := NewEngine(g, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ms := free.MemStats(); ms != (MemStats{}) {
		t.Fatalf("unbudgeted MemStats = %+v, want zero", ms)
	}
}

// TestEngineWarmCache: operator-named endpoints are BFS'd and deposited
// up front — bypassing the degree gate — so the first matching query is
// a cache hit; a disabled cache warms nothing; bad endpoints error.
func TestEngineWarmCache(t *testing.T) {
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	eps := []WarmEndpoint{
		{Origin: 3, Forward: true, K: 4},
		{Origin: 9, Forward: false, K: 4},
	}
	n, err := e.WarmCache(ctx, eps)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(eps) {
		t.Fatalf("warmed %d endpoints, want %d", n, len(eps))
	}
	before := e.CacheStats().Hits
	if _, err := e.ExecuteWith(ctx, Query{S: 3, T: 9, K: 4}, Options{}); err != nil {
		t.Fatal(err)
	}
	if after := e.CacheStats().Hits; after < before+2 {
		t.Fatalf("warmed query hit %d cached sides, want 2", after-before)
	}

	if _, err := e.WarmCache(ctx, []WarmEndpoint{{Origin: 3, Forward: true, K: 0}}); err == nil {
		t.Fatal("K=0 endpoint must error")
	}
	if _, err := e.WarmCache(ctx, []WarmEndpoint{{Origin: VertexID(g.NumVertices() + 5), Forward: true, K: 4}}); err == nil {
		t.Fatal("out-of-range origin must error")
	}

	off, err := NewEngine(g, EngineConfig{FrontierCache: -1})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := off.WarmCache(ctx, eps); err != nil || n != 0 {
		t.Fatalf("disabled cache warmed %d (%v), want 0, nil", n, err)
	}
}
