// Quickstart: build a small graph, enumerate hop-constrained s-t paths
// with each method, and inspect the optimizer's decision.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pathenum"
)

func main() {
	// The running-example graph of the paper (Figure 1a): s=0, t=1,
	// v0..v7 = 2..9.
	g, err := pathenum.NewGraph(10, []pathenum.Edge{
		{From: 0, To: 2}, {From: 0, To: 3}, {From: 0, To: 5},
		{From: 2, To: 3}, {From: 2, To: 8}, {From: 2, To: 1},
		{From: 3, To: 4}, {From: 3, To: 5},
		{From: 4, To: 2}, {From: 4, To: 1},
		{From: 5, To: 6},
		{From: 6, To: 7},
		{From: 7, To: 4}, {From: 7, To: 1},
		{From: 8, To: 2},
		{From: 1, To: 9},
	})
	if err != nil {
		log.Fatal(err)
	}

	q := pathenum.Query{S: 0, T: 1, K: 4}
	fmt.Printf("graph %v, query %v\n\n", g, q)

	// Stream every path through a callback.
	fmt.Println("paths:")
	res, err := pathenum.Enumerate(g, q, pathenum.Options{
		Emit: func(p []pathenum.VertexID) bool {
			fmt.Printf("  %v\n", p)
			return true
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d paths; plan=%s; index %d vertices / %d edges; total %v\n",
		res.Counters.Results, res.Plan.Method, res.IndexVertices, res.IndexEdges,
		res.Timings.Total())

	// Forcing each method returns the same answer.
	for _, m := range []pathenum.Method{pathenum.DFS, pathenum.Join} {
		r, err := pathenum.Enumerate(g, q, pathenum.Options{Method: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d paths\n", r.Plan.Method, r.Counters.Results)
	}

	// Materialize instead of streaming (fine for small result sets).
	paths, err := pathenum.Paths(g, q, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %d paths, e.g. %v\n", len(paths), paths[0])

	// Services answering a query stream hold an Engine: pooled sessions
	// amortize per-query allocations, and ExecuteWith merges per-call
	// overrides with the engine defaults while observing a context.
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{
		Workers: 2,
		Options: pathenum.Options{Timeout: time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	er, err := engine.ExecuteWith(ctx, q, pathenum.Options{Limit: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine (limit 3): %d paths, completed=%v\n", er.Counters.Results, er.Completed)
}
