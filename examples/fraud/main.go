// Fraud detection on a dynamic transaction graph (§1, application 2).
//
// Online shopping activity is modeled as a directed graph: vertices are
// users, edges are transactions. Sellers inflating product popularity
// create fake transaction *cycles*, so each newly arriving edge e(v,v') is
// checked for the hop-constrained cycles it closes (k = 6, per the paper's
// motivation) — exactly the q(v', v, k-1) HcPE query plus the new edge.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pathenum"
)

const (
	numUsers  = 3000
	baseEdges = 6000
	streamLen = 400
	hopK      = 6
	maxPrints = 8
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Historical transactions.
	var edges []pathenum.Edge
	for i := 0; i < baseEdges; i++ {
		edges = append(edges, pathenum.Edge{
			From: pathenum.VertexID(rng.Intn(numUsers)),
			To:   pathenum.VertexID(rng.Intn(numUsers)),
		})
	}
	// Plant a fraud ring: a small group wiring money in a circle.
	ring := []pathenum.VertexID{7, 913, 402, 1555, 88}
	for i := range ring {
		edges = append(edges, pathenum.Edge{From: ring[i], To: ring[(i+1)%len(ring)]})
	}
	base, err := pathenum.NewGraph(numUsers, edges)
	if err != nil {
		log.Fatal(err)
	}
	dyn := pathenum.NewDynamic(base)

	// Live stream: random transactions plus one that re-triggers the ring.
	type txn struct{ from, to pathenum.VertexID }
	stream := make([]txn, 0, streamLen)
	for i := 0; i < streamLen-1; i++ {
		stream = append(stream, txn{
			from: pathenum.VertexID(rng.Intn(numUsers)),
			to:   pathenum.VertexID(rng.Intn(numUsers)),
		})
	}
	stream = append(stream, txn{from: ring[len(ring)-1], to: ring[0]})

	flagged := 0
	var worst time.Duration
	start := time.Now()
	for _, tx := range stream {
		if tx.from == tx.to {
			continue
		}
		added, err := dyn.Insert(tx.from, tx.to)
		if err != nil {
			log.Fatal(err)
		}
		if !added {
			continue // duplicate transaction edge
		}
		snap := dyn.Snapshot()

		t0 := time.Now()
		cycles, err := pathenum.CountCyclesThroughEdge(snap, tx.from, tx.to, hopK)
		if err != nil {
			log.Fatal(err)
		}
		if d := time.Since(t0); d > worst {
			worst = d
		}
		if cycles > 0 {
			flagged++
			if flagged <= maxPrints {
				fmt.Printf("ALERT: txn %d->%d closes %d cycle(s) within %d hops\n",
					tx.from, tx.to, cycles, hopK)
				// Show one concrete cycle as evidence.
				_, err = pathenum.CyclesThroughEdge(snap, tx.from, tx.to, hopK, pathenum.Options{
					Limit: 1,
					Emit: func(c []pathenum.VertexID) bool {
						fmt.Printf("  evidence: %v\n", c)
						return false
					},
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	fmt.Printf("\nprocessed %d transactions in %v (worst query %v), %d flagged\n",
		len(stream), time.Since(start), worst, flagged)
}
