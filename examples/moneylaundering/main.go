// Money-laundering detection with accumulative risk (§1, application 1).
//
// Bank accounts are vertices, transactions edges. Short transaction flows
// between a suspicious source and destination account are red flags, and
// regulators attach a risk factor to every transaction (foreign capital,
// shell company, ...). A single risky hop is inconclusive, so the query
// asks for hop-constrained paths whose ACCUMULATED risk crosses a
// threshold — the accumulative-value extension (Appendix E, Algorithm 7).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathenum"
)

const (
	numAccounts = 3000
	numTxns     = 20000
	hopK        = 5
	riskBar     = 2.0 // minimum accumulated risk to report
)

func main() {
	rng := rand.New(rand.NewSource(23))

	var edges []pathenum.Edge
	for i := 0; i < numTxns; i++ {
		edges = append(edges, pathenum.Edge{
			From: pathenum.VertexID(rng.Intn(numAccounts)),
			To:   pathenum.VertexID(rng.Intn(numAccounts)),
		})
	}
	// A laundering chain through known-risky intermediaries.
	chain := []pathenum.VertexID{42, 1200, 2711, 99}
	for i := 0; i+1 < len(chain); i++ {
		edges = append(edges, pathenum.Edge{From: chain[i], To: chain[i+1]})
	}
	g, err := pathenum.NewGraph(numAccounts, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Risk factor per transaction: deterministic hash stands in for the
	// regulator's scoring model; the planted intermediaries are high-risk.
	risky := map[pathenum.VertexID]bool{1200: true, 2711: true}
	risk := func(from, to pathenum.VertexID) float64 {
		r := float64((int(from)*13+int(to)*7)%10) / 20 // 0 .. 0.45
		if risky[from] || risky[to] {
			r += 1.0
		}
		return r
	}

	source, dest := chain[0], chain[len(chain)-1]
	fmt.Printf("screening flows %d -> %d within %d hops, risk >= %.1f\n\n",
		source, dest, hopK, riskBar)

	reported := 0
	res, err := pathenum.EnumerateConstrained(g,
		pathenum.Query{S: source, T: dest, K: hopK},
		pathenum.Constraints{
			Accumulate: &pathenum.Accumulator{
				Value:    risk,
				Combine:  func(a, b float64) float64 { return a + b },
				Identity: 0,
				Accept:   func(total float64) bool { return total >= riskBar },
			},
		},
		pathenum.RunControl{Emit: func(p []pathenum.VertexID) bool {
			total := 0.0
			for i := 0; i+1 < len(p); i++ {
				total += risk(p[i], p[i+1])
			}
			reported++
			if reported <= 5 {
				fmt.Printf("  flow %v, accumulated risk %.2f\n", p, total)
			}
			return true
		}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d high-risk flows (of which %d printed); index held %d edges\n",
		res.Counters.Results, min(reported, 5), res.IndexEdges)

	// Contrast: how many flows exist regardless of risk?
	all, err := pathenum.Count(g, pathenum.Query{S: source, T: dest, K: hopK})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total flows within %d hops: %d (risk filter kept %.1f%%)\n",
		hopK, all, 100*float64(res.Counters.Results)/float64(max(all, 1)))
}
