// Knowledge-graph path queries with action-sequence constraints (§1,
// application 3).
//
// Entities connected by many short paths tend to be related, which is why
// knowledge-graph completion trains on hop-constrained path sets. Real
// deployments additionally constrain the *sequence of actions* along a
// path (e.g. author -write-> paper -mention-> topic), which Appendix E
// models as a DFA over edge labels (Algorithm 8).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathenum"
)

// Edge actions in our toy bibliographic knowledge graph.
const (
	actWrite   pathenum.Label = iota // author -> paper
	actMention                       // paper -> topic
	actCite                          // paper -> paper
	numActions
)

const (
	numAuthors = 300
	numPapers  = 900
	numTopics  = 120
	hopK       = 4
)

// Entity id layout: authors, then papers, then topics.
func paper(i int) pathenum.VertexID  { return pathenum.VertexID(numAuthors + i) }
func topic(i int) pathenum.VertexID  { return pathenum.VertexID(numAuthors + numPapers + i) }
func author(i int) pathenum.VertexID { return pathenum.VertexID(i) }

func main() {
	rng := rand.New(rand.NewSource(5))
	n := numAuthors + numPapers + numTopics

	type labeled struct {
		e pathenum.Edge
		l pathenum.Label
	}
	var all []labeled
	add := func(from, to pathenum.VertexID, l pathenum.Label) {
		all = append(all, labeled{e: pathenum.Edge{From: from, To: to}, l: l})
	}
	for i := 0; i < numPapers; i++ {
		// 1-3 authors write each paper.
		for a := 0; a < 1+rng.Intn(3); a++ {
			add(author(rng.Intn(numAuthors)), paper(i), actWrite)
		}
		// Each paper mentions 1-2 topics and cites a few papers.
		for m := 0; m < 1+rng.Intn(2); m++ {
			add(paper(i), topic(rng.Intn(numTopics)), actMention)
		}
		for c := 0; c < rng.Intn(4); c++ {
			add(paper(i), paper(rng.Intn(numPapers)), actCite)
		}
	}

	edges := make([]pathenum.Edge, len(all))
	labels := map[pathenum.Edge]pathenum.Label{}
	for i, le := range all {
		edges[i] = le.e
		labels[le.e] = le.l
	}
	g, err := pathenum.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	labelOf := func(from, to pathenum.VertexID) pathenum.Label {
		return labels[pathenum.Edge{From: from, To: to}]
	}

	// Relation-prediction feature: does author A relate to topic T via the
	// exact action sequence write -> mention?
	dfa, err := pathenum.ExactSequenceDFA(int(numActions), []pathenum.Label{actWrite, actMention})
	if err != nil {
		log.Fatal(err)
	}

	// Probe a handful of author/topic pairs and report path support.
	fmt.Println("author -> topic support via write->mention:")
	shown := 0
	for i := 0; i < numAuthors && shown < 5; i++ {
		a, tp := author(i), topic(i%numTopics)
		res, err := pathenum.EnumerateConstrained(g,
			pathenum.Query{S: a, T: tp, K: hopK},
			pathenum.Constraints{Sequence: &pathenum.SequenceConstraint{
				Automaton: dfa,
				Label:     labelOf,
			}},
			pathenum.RunControl{})
		if err != nil {
			log.Fatal(err)
		}
		if res.Counters.Results > 0 {
			shown++
			// Compare with the unconstrained path count: the sequence
			// constraint separates true write->mention support from
			// arbitrary citation chains.
			total, err := pathenum.Count(g, pathenum.Query{S: a, T: tp, K: hopK})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  author %d ~ topic %d: %d write->mention paths (of %d total paths)\n",
				a, tp, res.Counters.Results, total)
		}
	}
	if shown == 0 {
		fmt.Println("  (no supported pairs in this random instance)")
	}

	// A longer pattern: write -> cite -> mention, i.e. the author's paper
	// cites a paper on the topic.
	dfa2, err := pathenum.ExactSequenceDFA(int(numActions), []pathenum.Label{actWrite, actCite, actMention})
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for i := 0; i < 50; i++ {
		res, err := pathenum.EnumerateConstrained(g,
			pathenum.Query{S: author(i), T: topic(i % numTopics), K: hopK},
			pathenum.Constraints{Sequence: &pathenum.SequenceConstraint{Automaton: dfa2, Label: labelOf}},
			pathenum.RunControl{})
		if err != nil {
			log.Fatal(err)
		}
		count += int(res.Counters.Results)
	}
	fmt.Printf("\nwrite->cite->mention support across 50 probe pairs: %d paths\n", count)
}
