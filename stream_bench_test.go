// Benchmarks for the streaming query surface: time-to-first-path of
// Engine.Stream against full enumeration — the real-time delivery metric.
// CI uploads these (BENCH_stream.json) alongside the batch and cache
// artifacts for the perf trajectory.
package pathenum

import (
	"context"
	"iter"
	"testing"
)

// benchStreamEngine serves a layered DAG with 6^6 ≈ 46k result paths —
// heavy enough that materializing everything dominates first-path latency.
func benchStreamEngine(b *testing.B) (*Engine, Query) {
	b.Helper()
	width, depth := 6, 6
	n := 2 + width*depth
	var edges []Edge
	layer := func(l, i int) VertexID { return VertexID(1 + l*width + i) }
	for i := 0; i < width; i++ {
		edges = append(edges, Edge{From: 0, To: layer(0, i)})
		edges = append(edges, Edge{From: layer(depth-1, i), To: VertexID(n - 1)})
	}
	for l := 0; l+1 < depth; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				edges = append(edges, Edge{From: layer(l, i), To: layer(l+1, j)})
			}
		}
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(g, EngineConfig{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	return e, Query{S: 0, T: VertexID(n - 1), K: depth + 1}
}

// BenchmarkStreamFirstPath measures time-to-first-path: each iteration
// opens an unbuffered stream, pulls exactly one path and stops. ns/op IS
// the first-path latency of a ~46k-result query.
func BenchmarkStreamFirstPath(b *testing.B) {
	e, q := benchStreamEngine(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, stop := iter.Pull2(e.Stream(ctx, NewRequest(q)))
		p, err, ok := next()
		if !ok || err != nil || len(p) == 0 {
			b.Fatalf("first pull: ok=%v err=%v", ok, err)
		}
		stop()
	}
}

// BenchmarkStreamDrain drains the full stream — the streaming cost of
// delivering every path (per-path copy included), the number to compare
// against the Emit baseline below.
func BenchmarkStreamDrain(b *testing.B) {
	e, q := benchStreamEngine(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, err := range e.Stream(ctx, NewRequest(q)) {
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkStreamEnumerateBaseline is the callback-mode floor for the
// same query: full enumeration through ExecuteWith with a counting Emit
// (no per-path copies).
func BenchmarkStreamEnumerateBaseline(b *testing.B) {
	e, q := benchStreamEngine(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		res, err := e.ExecuteWith(ctx, q, Options{Emit: func(p []VertexID) bool { n++; return true }})
		if err != nil || res.Counters.Results == 0 {
			b.Fatalf("err=%v res=%+v", err, res)
		}
	}
}

// BenchmarkStreamDFSFirstPath is the DFS-planned first-path baseline:
// Method DFS forced on the same query, so the join benchmark below has an
// explicit yardstick (the optimizer picks the join on this graph, so the
// auto benchmark above is not a DFS measurement).
func BenchmarkStreamDFSFirstPath(b *testing.B) {
	e, q := benchStreamEngine(b)
	ctx := context.Background()
	req := NewRequest(q)
	req.Method = DFS
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, stop := iter.Pull2(e.Stream(ctx, req))
		p, err, ok := next()
		if !ok || err != nil || len(p) == 0 {
			b.Fatalf("first pull: ok=%v err=%v", ok, err)
		}
		stop()
	}
}

// BenchmarkStreamJoinFirstPath measures time-to-first-path on a
// join-planned query: each iteration opens an unbuffered stream with
// Method Join forced, pulls exactly one path and stops. With the
// tuple-at-a-time join the first path costs one half-side build plus a
// single probe walk — the acceptance bar is staying within ~2x of
// BenchmarkStreamDFSFirstPath, where the materialize-then-probe
// formulation paid both half sides up front before emitting anything.
func BenchmarkStreamJoinFirstPath(b *testing.B) {
	e, q := benchStreamEngine(b)
	ctx := context.Background()
	req := NewRequest(q)
	req.Method = Join
	var res *Result
	req.OnResult = func(r *Result) { res = r }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, stop := iter.Pull2(e.Stream(ctx, req))
		p, err, ok := next()
		if !ok || err != nil || len(p) == 0 {
			b.Fatalf("first pull: ok=%v err=%v", ok, err)
		}
		stop()
	}
	b.StopTimer()
	if res == nil || res.Plan.Method != Join {
		b.Fatalf("benchmark did not run join-planned: %+v", res)
	}
}

// BenchmarkStreamJoinDrain drains the full join-planned stream — the
// streaming cost of delivering every path through the tuple-at-a-time
// join, to compare against BenchmarkStreamDrain's DFS plan.
func BenchmarkStreamJoinDrain(b *testing.B) {
	e, q := benchStreamEngine(b)
	ctx := context.Background()
	req := NewRequest(q)
	req.Method = Join
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, err := range e.Stream(ctx, req) {
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkStreamWhileInsert measures streaming under a concurrent write
// load: one writer inserting (and publishing) while the measured
// goroutine streams — the turnkey dynamic scenario.
func BenchmarkStreamWhileInsert(b *testing.B) {
	e, q := benchStreamEngine(b)
	ctx := context.Background()
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		n := VertexID(e.Graph().NumVertices())
		from, to := VertexID(1), VertexID(2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = e.Insert(from, to)
			to++
			if to == n {
				from, to = from+1, 1
				if from == n {
					from = 1
				}
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, stopIter := iter.Pull2(e.Stream(ctx, NewRequest(q)))
		if _, err, ok := next(); !ok || err != nil {
			b.Fatalf("first pull under writes: ok=%v err=%v", ok, err)
		}
		stopIter()
	}
	b.StopTimer()
	close(stop)
	<-writerDone
}
