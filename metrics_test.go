package pathenum_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"pathenum"
	"pathenum/internal/obs"
)

// metricsEngine builds a small diamond-graph engine with a shared
// registry for snapshot assertions.
func metricsEngine(t *testing.T, cfg pathenum.EngineConfig) (*pathenum.Engine, *pathenum.MetricsRegistry) {
	t.Helper()
	g, err := pathenum.NewGraph(4, []pathenum.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}, {From: 3, To: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := pathenum.NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, e.Metrics()
}

func TestMetricsExecuteAndStream(t *testing.T) {
	e, reg := metricsEngine(t, pathenum.EngineConfig{Workers: 2})
	q := pathenum.Query{S: 0, T: 3, K: 4}

	var emitted int
	if _, err := e.ExecuteWith(context.Background(), q, pathenum.Options{
		Emit: func(p pathenum.Path) bool { emitted++; return true },
	}); err != nil {
		t.Fatal(err)
	}
	if emitted == 0 {
		t.Fatal("emit never fired")
	}
	var streamed int
	for p, err := range e.Stream(context.Background(), pathenum.Request{S: 0, T: 3, K: 4}) {
		if err != nil {
			t.Fatal(err)
		}
		_ = p
		streamed++
	}
	if streamed != emitted {
		t.Fatalf("stream delivered %d paths, execute emitted %d", streamed, emitted)
	}

	snap := reg.Snapshot()
	for series, want := range map[string]float64{
		`pathenum_requests_total{op="execute"}`:                 1,
		`pathenum_requests_total{op="stream"}`:                  1,
		`pathenum_request_duration_seconds{op="execute"}_count`: 1,
		`pathenum_request_duration_seconds{op="stream"}_count`:  1,
		`pathenum_first_path_seconds{op="execute"}_count`:       1,
		`pathenum_first_path_seconds{op="stream"}_count`:        1,
		`pathenum_request_errors_total{op="execute"}`:           0,
		`pathenum_paths_emitted_total`:                          float64(emitted + streamed),
		// Stage histograms are run-sampled 1-in-stageSample with the
		// first run always observed: two runs → one observation.
		`pathenum_stage_duration_seconds{stage="bfs"}_count`: 1,
		`pathenum_stage_sample_rate`:                         8,
		`pathenum_pool_workers`:                              2,
		`pathenum_graph_vertices`:                            4,
		`pathenum_graph_edges`:                               5,
	} {
		if got := snap[series]; got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	// An invalid query is a terminal error on the stream surface.
	for _, err := range e.Stream(context.Background(), pathenum.Request{S: 0, T: 99, K: 3}) {
		if err == nil {
			t.Fatal("expected terminal error for out-of-range target")
		}
	}
	if got := reg.Snapshot()[`pathenum_request_errors_total{op="stream"}`]; got != 1 {
		t.Fatalf("stream errors = %v, want 1", got)
	}
}

func TestMetricsBatchSurfaces(t *testing.T) {
	e, reg := metricsEngine(t, pathenum.EngineConfig{Workers: 2})
	qs := []pathenum.Query{{S: 0, T: 3, K: 4}, {S: 0, T: 3, K: 4}, {S: 1, T: 3, K: 3}}
	if _, errs, _ := e.ExecuteBatch(context.Background(), qs, pathenum.Options{}); errs[0] != nil {
		t.Fatal(errs[0])
	}
	for range e.StreamBatch(context.Background(), qs, pathenum.Options{}) {
	}
	snap := reg.Snapshot()
	if got := snap[`pathenum_requests_total{op="batch"}`]; got != 1 {
		t.Fatalf("batch requests = %v", got)
	}
	if got := snap[`pathenum_requests_total{op="stream_batch"}`]; got != 1 {
		t.Fatalf("stream_batch requests = %v", got)
	}
	if got := snap[`pathenum_batch_queries_total`]; got != 6 {
		t.Fatalf("batch queries = %v, want 6", got)
	}
	if got := snap[`pathenum_request_duration_seconds{op="stream_batch"}_count`]; got != 1 {
		t.Fatalf("stream_batch duration count = %v", got)
	}
	// Stage timings fold in once per unique execution — 2 unique from the
	// batch + 2 unique from the streaming batch — but the stage
	// histograms are run-sampled (1 in stageSample, first run always
	// observed), so four runs yield exactly one observation.
	if got := snap[`pathenum_stage_duration_seconds{stage="enumerate"}_count`]; got != 1 {
		t.Fatalf("enumerate stage count = %v, want 1 (sampled)", got)
	}
}

func TestMetricsWritePath(t *testing.T) {
	e, reg := metricsEngine(t, pathenum.EngineConfig{SnapshotEvery: 3})
	mustInsert := func(from, to pathenum.VertexID) {
		t.Helper()
		added, err := e.Insert(from, to)
		if err != nil || !added {
			t.Fatalf("insert (%d,%d): added=%v err=%v", from, to, added, err)
		}
	}
	mustInsert(1, 2)
	mustInsert(2, 1)
	snap := reg.Snapshot()
	if got := snap["pathenum_inserts_total"]; got != 2 {
		t.Fatalf("inserts = %v", got)
	}
	if got := snap["pathenum_pending_writes"]; got != 2 {
		t.Fatalf("pending writes = %v", got)
	}
	if got := snap["pathenum_insert_lag_seconds"]; got <= 0 {
		t.Fatalf("insert lag = %v, want > 0 with buffered writes", got)
	}
	if got := snap["pathenum_snapshots_published_total"]; got != 0 {
		t.Fatalf("publishes = %v before flush", got)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap["pathenum_snapshots_published_total"]; got != 1 {
		t.Fatalf("publishes = %v after flush", got)
	}
	if got := snap["pathenum_insert_publish_lag_seconds_count"]; got != 1 {
		t.Fatalf("publish lag observations = %v", got)
	}
	if got := snap["pathenum_pending_writes"]; got != 0 {
		t.Fatalf("pending writes after flush = %v", got)
	}
	if got := snap["pathenum_insert_lag_seconds"]; got != 0 {
		t.Fatalf("insert lag after flush = %v", got)
	}
	if got := snap["pathenum_graph_epoch"]; got != 2 {
		t.Fatalf("epoch = %v, want 2 after two applied insertions", got)
	}
}

func TestMetricsExpositionValid(t *testing.T) {
	e, reg := metricsEngine(t, pathenum.EngineConfig{})
	if _, err := e.Execute(pathenum.Query{S: 0, T: 3, K: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("engine exposition invalid: %v\n%s", err, buf.String())
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE pathenum_request_duration_seconds histogram",
		"# TYPE pathenum_requests_total counter",
		"# TYPE pathenum_frontier_cache_hits_total counter",
		"# TYPE pathenum_pool_utilization gauge",
		"pathenum_graph_epoch 1",
		"pathenum_inserts_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsSharedRegistry verifies EngineConfig.Metrics lets a front
// end co-locate its series with the engine's on one registry.
func TestMetricsSharedRegistry(t *testing.T) {
	reg := pathenum.NewMetricsRegistry()
	reg.Counter(obs.L("http_requests_total", "handler", "query"), "").Inc()
	e, got := metricsEngine(t, pathenum.EngineConfig{Metrics: reg})
	if got != reg {
		t.Fatal("engine did not adopt the shared registry")
	}
	if _, err := e.Execute(pathenum.Query{S: 0, T: 3, K: 4}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap[`http_requests_total{handler="query"}`] != 1 || snap[`pathenum_requests_total{op="execute"}`] != 1 {
		t.Fatalf("shared registry missing series: %v", snap)
	}
}
