package pathenum_test

import (
	"context"
	"fmt"
	"log"
	"sort"

	"pathenum"
)

// The examples run on a small diamond graph: 0 -> {1,2} -> 3, plus 3 -> 0.
func diamondGraph() *pathenum.Graph {
	g, err := pathenum.NewGraph(4, []pathenum.Edge{
		{From: 0, To: 1}, {From: 0, To: 2},
		{From: 1, To: 3}, {From: 2, To: 3},
		{From: 3, To: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func ExampleEnumerate() {
	g := diamondGraph()
	res, err := pathenum.Enumerate(g, pathenum.Query{S: 0, T: 3, K: 3}, pathenum.Options{
		Emit: func(p []pathenum.VertexID) bool {
			fmt.Println(p)
			return true
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("count:", res.Counters.Results)
	// Output:
	// [0 1 3]
	// [0 2 3]
	// count: 2
}

func ExampleCount() {
	g := diamondGraph()
	n, err := pathenum.Count(g, pathenum.Query{S: 0, T: 3, K: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(n)
	// Output: 2
}

func ExamplePaths() {
	g := diamondGraph()
	paths, err := pathenum.Paths(g, pathenum.Query{S: 0, T: 3, K: 3}, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range paths {
		fmt.Println(p)
	}
	// Output:
	// [0 1 3]
	// [0 2 3]
}

func ExampleCyclesThroughEdge() {
	g := diamondGraph()
	n, err := pathenum.CountCyclesThroughEdge(g, 3, 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cycles through 3->0:", n)
	// Output: cycles through 3->0: 2
}

func ExampleEnumerateConstrained() {
	g := diamondGraph()
	// Only paths avoiding the edge (0,1).
	res, err := pathenum.EnumerateConstrained(g,
		pathenum.Query{S: 0, T: 3, K: 3},
		pathenum.Constraints{
			Predicate: func(u, v pathenum.VertexID) bool { return !(u == 0 && v == 1) },
		},
		pathenum.RunControl{Emit: func(p []pathenum.VertexID) bool {
			fmt.Println(p)
			return true
		}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("count:", res.Counters.Results)
	// Output:
	// [0 2 3]
	// count: 1
}

func ExampleEngine() {
	g := diamondGraph()
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	counts, err := engine.CountAll([]pathenum.Query{
		{S: 0, T: 3, K: 3},
		{S: 3, T: 1, K: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(counts)
	// Output: [2 1]
}

// Engine.Stream delivers paths incrementally: the loop body runs while
// enumeration is suspended, so the first paths of a heavy query arrive
// long before the run completes. OnResult receives the final summary.
func ExampleEngine_Stream() {
	g := diamondGraph()
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	req := pathenum.Request{S: 0, T: 3, K: 3}
	req.OnResult = func(res *pathenum.Result) { fmt.Println("count:", res.Counters.Results) }
	for path, err := range engine.Stream(context.Background(), req) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(path)
	}
	// Output:
	// [0 1 3]
	// [0 2 3]
	// count: 2
}

// A join-planned stream delivers tuple-at-a-time: the smaller half of the
// cut is materialized into hash buckets, the other half is probed lazily,
// and every joined path is validated and yielded immediately — the first
// path arrives after one half-side build instead of a full
// materialize-then-probe pass. Forcing Method Join shows the wiring; the
// optimizer picks the join on its own when the estimated walk count makes
// it cheaper, and the stream contract is identical either way.
func ExampleEngine_Stream_joinPlanned() {
	g := diamondGraph()
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	req := pathenum.Request{S: 0, T: 3, K: 3}
	req.Method = pathenum.Join
	req.OnResult = func(res *pathenum.Result) {
		fmt.Println(res.Plan.Method, "cut", res.Plan.Cut, "build tuples:", res.JoinStats.BuildTuples)
	}
	for path, err := range engine.Stream(context.Background(), req) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(path)
	}
	// Output:
	// [0 1 3]
	// [0 2 3]
	// IDX-JOIN cut 2 build tuples: 2
}

// Request.Parallelism fans one query's enumeration across the engine's
// worker pool: the join's probe walks or the DFS's first-hop subtrees
// shard across goroutines and merge back into the single delivery stream.
// The path set, counts and limit semantics are identical to the
// sequential run — only arrival order differs, so the example sorts
// before printing. The engine caps the fan-out at its worker count.
func ExampleEngine_Stream_parallel() {
	g := diamondGraph()
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	req := pathenum.Request{S: 0, T: 3, K: 3, Parallelism: 4}
	var count uint64
	req.OnResult = func(res *pathenum.Result) { count = res.Counters.Results }
	var paths []pathenum.Path
	for path, err := range engine.Stream(context.Background(), req) {
		if err != nil {
			log.Fatal(err)
		}
		paths = append(paths, path)
	}
	sort.Slice(paths, func(i, j int) bool { return paths[i][1] < paths[j][1] })
	for _, p := range paths {
		fmt.Println(p)
	}
	fmt.Println("count:", count)
	// Output:
	// [0 1 3]
	// [0 2 3]
	// count: 2
}

// Engine.Insert is the engine-owned write path: the edge is applied to an
// engine-owned dynamic graph, a fresh snapshot is published (amortized by
// EngineConfig.SnapshotEvery) and the graph epoch advances — queries and
// streams immediately see the new edge, while cached structures from
// earlier epochs are invalidated instead of trusted.
func ExampleEngine_Insert() {
	g := diamondGraph()
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	q := pathenum.Query{S: 0, T: 3, K: 3}
	before, _ := engine.Execute(q)
	if _, err := engine.Insert(1, 2); err != nil { // adds the path 0-1-2-3
		log.Fatal(err)
	}
	after, _ := engine.Execute(q)
	fmt.Println(before.Counters.Results, "->", after.Counters.Results, "epoch", engine.Epoch())
	// Output: 2 -> 3 epoch 1
}
