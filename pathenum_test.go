package pathenum

import (
	"bytes"
	"strings"
	"testing"
)

// diamond: 0 -> {1,2} -> 3, plus 3 -> 0 closing edge.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph(4, []Edge{
		{From: 0, To: 1}, {From: 0, To: 2},
		{From: 1, To: 3}, {From: 2, To: 3},
		{From: 3, To: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEnumerateBasic(t *testing.T) {
	g := diamond(t)
	res, err := Enumerate(g, Query{S: 0, T: 3, K: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != 2 {
		t.Fatalf("Results = %d, want 2", res.Counters.Results)
	}
}

func TestCount(t *testing.T) {
	g := diamond(t)
	n, err := Count(g, Query{S: 0, T: 3, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Count = %d, want 2", n)
	}
}

func TestPaths(t *testing.T) {
	g := diamond(t)
	paths, err := Paths(g, Query{S: 0, T: 3, K: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths", len(paths))
	}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Fatalf("bad endpoints: %v", p)
		}
	}
	limited, err := Paths(g, Query{S: 0, T: 3, K: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 1 {
		t.Fatalf("limit=1 returned %d paths", len(limited))
	}
}

func TestMethodsConstants(t *testing.T) {
	g := diamond(t)
	for _, m := range []Method{Auto, DFS, Join} {
		res, err := Enumerate(g, Query{S: 0, T: 3, K: 3}, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Counters.Results != 2 {
			t.Fatalf("%v: Results = %d", m, res.Counters.Results)
		}
	}
}

func TestGraphIO(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadGraph(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("IO round trip: %d vs %d edges", g2.NumEdges(), g.NumEdges())
	}
}

func TestDynamicWorkflow(t *testing.T) {
	g := diamond(t)
	d := NewDynamic(g)
	if _, err := d.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	n, err := Count(snap, Query{S: 0, T: 3, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// New path 0->1->2->3 joins the two originals.
	if n != 3 {
		t.Fatalf("Count after insert = %d, want 3", n)
	}
}

func TestCyclesThroughEdge(t *testing.T) {
	g := diamond(t)
	// Cycles through (3,0): 3->0->1->3 and 3->0->2->3, each 3 edges.
	var cycles [][]VertexID
	res, err := CyclesThroughEdge(g, 3, 0, 3, Options{Emit: func(c []VertexID) bool {
		cycles = append(cycles, append([]VertexID(nil), c...))
		return true
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != 2 || len(cycles) != 2 {
		t.Fatalf("cycles = %d (emitted %d), want 2", res.Counters.Results, len(cycles))
	}
	for _, c := range cycles {
		if c[0] != 0 || c[len(c)-1] != 0 {
			t.Fatalf("cycle %v must start and end at the edge head", c)
		}
		if len(c)-1 > 3 {
			t.Fatalf("cycle %v exceeds hop constraint", c)
		}
	}
	// Count-only variant.
	n, err := CountCyclesThroughEdge(g, 3, 0, 3)
	if err != nil || n != 2 {
		t.Fatalf("CountCyclesThroughEdge = %d, %v", n, err)
	}
}

func TestCyclesThroughEdgeValidation(t *testing.T) {
	g := diamond(t)
	if _, err := CyclesThroughEdge(g, 0, 3, 3, Options{}); err == nil {
		t.Error("missing edge: expected error")
	}
	if _, err := CyclesThroughEdge(g, 3, 0, 1, Options{}); err == nil {
		t.Error("k < 2: expected error")
	}
}

func TestEnumerateConstrained(t *testing.T) {
	g := diamond(t)
	// Forbid edge (0,1): only the path through 2 remains.
	res, err := EnumerateConstrained(g, Query{S: 0, T: 3, K: 3}, Constraints{
		Predicate: func(u, v VertexID) bool { return !(u == 0 && v == 1) },
	}, RunControl{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != 1 {
		t.Fatalf("Results = %d, want 1", res.Counters.Results)
	}
}

func TestConstrainedWithDFA(t *testing.T) {
	g := diamond(t)
	// Label every edge by its source vertex parity; require >= 1 odd-source
	// edge: only 0->1->3 qualifies (source 1 is odd).
	lbl := func(u, v VertexID) Label { return Label(u % 2) }
	dfa, err := AtLeastCountDFA(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EnumerateConstrained(g, Query{S: 0, T: 3, K: 3}, Constraints{
		Sequence: &SequenceConstraint{Automaton: dfa, Label: lbl},
	}, RunControl{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != 1 {
		t.Fatalf("Results = %d, want 1", res.Counters.Results)
	}
}

func TestExactSequenceDFAHelper(t *testing.T) {
	dfa, err := ExactSequenceDFA(2, []Label{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !dfa.Accepts([]Label{0, 1}) || dfa.Accepts([]Label{1, 0}) {
		t.Fatal("ExactSequenceDFA misbehaves")
	}
	if _, err := NewDFA(0, 1, 0); err == nil {
		t.Fatal("NewDFA with zero states: expected error")
	}
}
