// Benchmarks for the batch query subsystem: ExecuteBatch (shared-
// computation planning) against the naive ExecuteAllContext fan-out on the
// workloads the planner targets. CI uploads these (BENCH_batch.json) for
// the perf trajectory.
package pathenum

import (
	"context"
	"math/rand"
	"testing"

	"pathenum/internal/gen"
)

// sharedSourceBatch builds a 64-query batch all sharing one high-degree
// source — the workload where the naive fan-out repeats the identical
// forward BFS 64 times.
func sharedSourceBatch(g *Graph, count, k int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	hub := VertexID(0) // Barabási–Albert vertex 0 is a high-degree hub
	n := g.NumVertices()
	queries := make([]Query, 0, count)
	for len(queries) < count {
		t := VertexID(rng.Intn(n))
		if t == hub {
			continue
		}
		queries = append(queries, Query{S: hub, T: t, K: k})
	}
	return queries
}

func benchBatchEngine(b *testing.B) (*Engine, []Query) {
	b.Helper()
	g := gen.BarabasiAlbert(20000, 4, 42)
	e, err := NewEngine(g, EngineConfig{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	return e, sharedSourceBatch(g, 64, 4, 7)
}

// BenchmarkBatchSharedSource compares the batch subsystem against the
// naive fan-out on a 64-query shared-source batch. The shared run reports
// the planner's BFS-pass accounting; correctness is cross-checked against
// per-query enumeration before timing starts.
func BenchmarkBatchSharedSource(b *testing.B) {
	e, queries := benchBatchEngine(b)
	ctx := context.Background()

	// Cross-check (untimed): batch counts must equal per-query counts.
	results, errs, _ := e.ExecuteBatch(ctx, queries, Options{})
	for i, q := range queries {
		if errs[i] != nil {
			b.Fatal(errs[i])
		}
		want, err := Count(e.Graph(), q)
		if err != nil {
			b.Fatal(err)
		}
		if results[i].Counters.Results != want {
			b.Fatalf("%v: batch count %d != per-query %d", q, results[i].Counters.Results, want)
		}
	}

	b.Run("shared", func(b *testing.B) {
		var saved, passes int
		for i := 0; i < b.N; i++ {
			_, _, stats := e.ExecuteBatch(ctx, queries, Options{})
			saved, passes = stats.BFSPassesSaved, stats.BFSPasses
		}
		b.ReportMetric(float64(passes), "bfs-passes")
		b.ReportMetric(float64(saved), "bfs-saved")
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.ExecuteAllContext(ctx, queries, Options{})
		}
		b.ReportMetric(float64(2*len(queries)), "bfs-passes")
	})
}

// BenchmarkBatchMixed exercises the planner on a mixed workload with
// shared-source clusters, shared-target clusters, duplicates and loners.
func BenchmarkBatchMixed(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 42)
	e, err := NewEngine(g, EngineConfig{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	queries := batchWorkload(rng, g.NumVertices(), 64)
	ctx := context.Background()

	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.ExecuteBatch(ctx, queries, Options{})
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.ExecuteAllContext(ctx, queries, Options{})
		}
	})
}
