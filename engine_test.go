package pathenum

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pathenum/internal/gen"
)

func engineGraph() *Graph {
	return gen.BarabasiAlbert(400, 5, 99)
}

func engineQueries(n int, seed int64, numVertices int) []Query {
	rng := rand.New(rand.NewSource(seed))
	var qs []Query
	for len(qs) < n {
		s := VertexID(rng.Intn(numVertices))
		t := VertexID(rng.Intn(numVertices))
		if s == t {
			continue
		}
		qs = append(qs, Query{S: s, T: t, K: 4})
	}
	return qs
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, EngineConfig{}); err == nil {
		t.Fatal("nil graph: expected error")
	}
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph() != g {
		t.Fatal("Graph accessor mismatch")
	}
}

func TestEngineExecute(t *testing.T) {
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := engineQueries(1, 5, g.NumVertices())[0]
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Count(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != want {
		t.Fatalf("engine count %d, direct %d", res.Counters.Results, want)
	}
}

// TestEngineMatchesSequential: concurrent execution returns exactly the
// sequential answers in input order.
func TestEngineMatchesSequential(t *testing.T) {
	g := engineGraph()
	queries := engineQueries(40, 17, g.NumVertices())
	e, err := NewEngine(g, EngineConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := e.CountAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := Count(g, q)
		if err != nil {
			t.Fatal(err)
		}
		if counts[i] != want {
			t.Fatalf("query %d (%v): engine %d, sequential %d", i, q, counts[i], want)
		}
	}
}

func TestEngineWithOracle(t *testing.T) {
	g := engineGraph()
	oracle, err := BuildOracle(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	queries := engineQueries(20, 23, g.NumVertices())
	plain, err := NewEngine(g, EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewEngine(g, EngineConfig{Workers: 4, Oracle: oracle})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.CountAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fast.CountAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d: plain %d, oracle %d", i, a[i], b[i])
		}
	}
}

func TestEngineInvalidQuery(t *testing.T) {
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{{S: 0, T: 1, K: 3}, {S: 2, T: 2, K: 3}}
	results, errs := e.ExecuteAll(queries)
	if errs[0] != nil || results[0] == nil {
		t.Fatal("valid query must succeed")
	}
	if errs[1] == nil {
		t.Fatal("invalid query must carry an error")
	}
	if _, err := e.CountAll(queries); err == nil {
		t.Fatal("CountAll must surface the error")
	}
}

// TestEngineExecuteWithMergesOptions: zero-valued per-call fields inherit
// the engine defaults; non-zero fields override them.
func TestEngineExecuteWithMergesOptions(t *testing.T) {
	g := gen.Layered(5, 3) // 125 paths 0 -> 1 within k=4
	q := Query{S: 0, T: 1, K: 4}
	e, err := NewEngine(g, EngineConfig{Options: Options{Limit: 2, Method: DFS}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// No overrides: the engine default limit applies.
	res, err := e.ExecuteWith(ctx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != 2 || res.Completed {
		t.Fatalf("default limit: %d results, completed=%v", res.Counters.Results, res.Completed)
	}
	if res.Plan.Method != DFS {
		t.Fatalf("default method not applied: %v", res.Plan.Method)
	}

	// Per-call limit overrides the default.
	res, err = e.ExecuteWith(ctx, q, Options{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != 5 {
		t.Fatalf("override limit: %d results, want 5", res.Counters.Results)
	}

	// Per-call method overrides the default.
	res, err = e.ExecuteWith(ctx, q, Options{Method: Join, Limit: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Method != Join {
		t.Fatalf("override method not applied: %v", res.Plan.Method)
	}
	if res.Counters.Results != 125 || !res.Completed {
		t.Fatalf("override run: %d results, completed=%v", res.Counters.Results, res.Completed)
	}

	// Per-call emit overrides a nil default and sees every path.
	var seen int
	if _, err = e.ExecuteWith(ctx, q, Options{Limit: 200, Emit: func([]VertexID) bool {
		seen++
		return true
	}}); err != nil {
		t.Fatal(err)
	}
	if seen != 125 {
		t.Fatalf("emit override saw %d paths, want 125", seen)
	}
}

// TestEngineExecuteWithCancel: cancelling the call context stops a heavy
// query promptly with Completed=false.
func TestEngineExecuteWithCancel(t *testing.T) {
	g := gen.Layered(24, 5) // ~8M paths
	e, err := NewEngine(g, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var emitted uint64
	res, err := e.ExecuteWith(ctx, Query{S: 0, T: 1, K: 6}, Options{
		Method: DFS,
		Emit: func([]VertexID) bool {
			emitted++
			if emitted == 50 {
				cancel()
			}
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("cancelled query must not complete")
	}
	if res.Counters.Results > 1_000_000 {
		t.Fatalf("cancelled query ran too long: %d results", res.Counters.Results)
	}
}

// TestEngineExecuteAllContextFailFast: a cancelled batch context marks the
// unstarted queries with the context error instead of running them.
func TestEngineExecuteAllContextFailFast(t *testing.T) {
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := engineQueries(8, 3, g.NumVertices())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, errs := e.ExecuteAllContext(ctx, queries, Options{})
	for i := range queries {
		if errs[i] == nil || results[i] != nil {
			t.Fatalf("slot %d: err=%v result=%v, want fail-fast ctx error", i, errs[i], results[i])
		}
	}
}

// TestEngineExecuteAllContextOptions: batch-wide overrides reach every
// query.
func TestEngineExecuteAllContextOptions(t *testing.T) {
	g := gen.Layered(5, 3)
	e, err := NewEngine(g, EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{S: 0, T: 1, K: 4} // 125 paths
	results, errs := e.ExecuteAllContext(context.Background(), []Query{q, q, q}, Options{Limit: 7})
	for i := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].Counters.Results != 7 {
			t.Fatalf("slot %d: %d results, want 7", i, results[i].Counters.Results)
		}
	}
}

// TestEngineExecuteWithRace exercises pooled sessions concurrently through
// the context entry point with mixed per-call options (run under -race in
// CI).
func TestEngineExecuteWithRace(t *testing.T) {
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{Workers: 16, Options: Options{Limit: 500}})
	if err != nil {
		t.Fatal(err)
	}
	queries := engineQueries(64, 41, g.NumVertices())
	var wg sync.WaitGroup
	errc := make(chan error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q Query) {
			defer wg.Done()
			opts := Options{}
			switch i % 3 {
			case 1:
				opts.Method = DFS
			case 2:
				opts.Limit = 10
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			if _, err := e.ExecuteWith(ctx, q, opts); err != nil {
				errc <- err
			}
		}(i, q)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestEngineRace(t *testing.T) {
	// Exercised under -race in CI-style runs: many workers, many queries.
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	queries := engineQueries(100, 31, g.NumVertices())
	if _, err := e.CountAll(queries); err != nil {
		t.Fatal(err)
	}
}
