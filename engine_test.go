package pathenum

import (
	"math/rand"
	"testing"

	"pathenum/internal/gen"
)

func engineGraph() *Graph {
	return gen.BarabasiAlbert(400, 5, 99)
}

func engineQueries(n int, seed int64, numVertices int) []Query {
	rng := rand.New(rand.NewSource(seed))
	var qs []Query
	for len(qs) < n {
		s := VertexID(rng.Intn(numVertices))
		t := VertexID(rng.Intn(numVertices))
		if s == t {
			continue
		}
		qs = append(qs, Query{S: s, T: t, K: 4})
	}
	return qs
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, EngineConfig{}); err == nil {
		t.Fatal("nil graph: expected error")
	}
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph() != g {
		t.Fatal("Graph accessor mismatch")
	}
}

func TestEngineExecute(t *testing.T) {
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := engineQueries(1, 5, g.NumVertices())[0]
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Count(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != want {
		t.Fatalf("engine count %d, direct %d", res.Counters.Results, want)
	}
}

// TestEngineMatchesSequential: concurrent execution returns exactly the
// sequential answers in input order.
func TestEngineMatchesSequential(t *testing.T) {
	g := engineGraph()
	queries := engineQueries(40, 17, g.NumVertices())
	e, err := NewEngine(g, EngineConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := e.CountAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := Count(g, q)
		if err != nil {
			t.Fatal(err)
		}
		if counts[i] != want {
			t.Fatalf("query %d (%v): engine %d, sequential %d", i, q, counts[i], want)
		}
	}
}

func TestEngineWithOracle(t *testing.T) {
	g := engineGraph()
	oracle, err := BuildOracle(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	queries := engineQueries(20, 23, g.NumVertices())
	plain, err := NewEngine(g, EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewEngine(g, EngineConfig{Workers: 4, Oracle: oracle})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.CountAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fast.CountAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d: plain %d, oracle %d", i, a[i], b[i])
		}
	}
}

func TestEngineInvalidQuery(t *testing.T) {
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{{S: 0, T: 1, K: 3}, {S: 2, T: 2, K: 3}}
	results, errs := e.ExecuteAll(queries)
	if errs[0] != nil || results[0] == nil {
		t.Fatal("valid query must succeed")
	}
	if errs[1] == nil {
		t.Fatal("invalid query must carry an error")
	}
	if _, err := e.CountAll(queries); err == nil {
		t.Fatal("CountAll must surface the error")
	}
}

func TestEngineRace(t *testing.T) {
	// Exercised under -race in CI-style runs: many workers, many queries.
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	queries := engineQueries(100, 31, g.NumVertices())
	if _, err := e.CountAll(queries); err != nil {
		t.Fatal(err)
	}
}
