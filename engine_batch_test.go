package pathenum

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"pathenum/internal/gen"
)

// batchWorkload samples a mixed batch: shared-source runs, shared-target
// runs, exact duplicates and loners — the workload ExecuteBatch exists for.
func batchWorkload(rng *rand.Rand, n, count int) []Query {
	var qs []Query
	v := func() VertexID { return VertexID(rng.Intn(n)) }
	for len(qs) < count {
		k := 3 + rng.Intn(3)
		switch rng.Intn(4) {
		case 0:
			s := v()
			for i := 0; i < 4 && len(qs) < count; i++ {
				qs = append(qs, Query{S: s, T: v(), K: k})
			}
		case 1:
			t := v()
			for i := 0; i < 4 && len(qs) < count; i++ {
				qs = append(qs, Query{S: v(), T: t, K: k})
			}
		case 2:
			if len(qs) > 0 {
				qs = append(qs, qs[rng.Intn(len(qs))])
			}
		default:
			qs = append(qs, Query{S: v(), T: v(), K: k})
		}
	}
	return qs
}

// TestExecuteBatchMatchesEnumerate is the acceptance cross-check: batch
// execution (dedup + shared frontiers + scheduling) must report exactly
// the per-query counts of a plain Enumerate on random graphs.
func TestExecuteBatchMatchesEnumerate(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 5; trial++ {
		n := 50 + rng.Intn(100)
		g := gen.BarabasiAlbert(n, 4, rng.Int63())
		e, err := NewEngine(g, EngineConfig{Workers: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		queries := batchWorkload(rng, n, 32)
		results, errs, stats := e.ExecuteBatch(context.Background(), queries, Options{})
		for i, q := range queries {
			if q.Validate(g) != nil {
				if errs[i] == nil {
					t.Fatalf("invalid query %d accepted", i)
				}
				continue
			}
			if errs[i] != nil {
				t.Fatalf("query %d: %v", i, errs[i])
			}
			want, werr := Enumerate(g, q, Options{})
			if werr != nil {
				t.Fatal(werr)
			}
			if results[i].Counters.Results != want.Counters.Results {
				t.Fatalf("trial %d %v: batch count %d != Enumerate %d",
					trial, q, results[i].Counters.Results, want.Counters.Results)
			}
			if !results[i].Completed {
				t.Fatalf("trial %d %v: batch run did not complete", trial, q)
			}
		}
		if stats.Queries != len(queries) || stats.BFSPasses > stats.BFSPassesNaive {
			t.Fatalf("implausible stats: %+v", stats)
		}
	}
}

// TestExecuteBatchDedupFanOut: duplicate queries share one execution and
// the same Result pointer.
func TestExecuteBatchDedupFanOut(t *testing.T) {
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{S: 1, T: 7, K: 4}
	queries := []Query{q, q, q}
	results, errs, stats := e.ExecuteBatch(context.Background(), queries, Options{})
	for i := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Fatal("duplicates should share one Result")
	}
	if stats.Deduped != 2 || stats.Unique != 1 {
		t.Fatalf("stats = %+v, want Deduped=2 Unique=1", stats)
	}
}

// TestExecuteBatchConstraints: a constraint-carrying batch (edge
// predicate shared batch-wide) agrees with constrained per-query runs.
func TestExecuteBatchConstraints(t *testing.T) {
	g := engineGraph()
	e, err := NewEngine(g, EngineConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	pred := func(from, to VertexID) bool { return (int(from)+int(to))%3 != 0 }
	var queries []Query
	for i := 1; i <= 8; i++ {
		queries = append(queries, Query{S: 0, T: VertexID(i * 7), K: 4})
	}
	results, errs, _ := e.ExecuteBatch(context.Background(), queries, Options{Predicate: pred})
	for i, q := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		want, werr := Enumerate(g, q, Options{Predicate: pred})
		if werr != nil {
			t.Fatal(werr)
		}
		if results[i].Counters.Results != want.Counters.Results {
			t.Fatalf("%v: constrained batch count %d != Enumerate %d",
				q, results[i].Counters.Results, want.Counters.Results)
		}
	}
}

// TestExecuteBatchCancelledMidway: fail-fast cancellation must mark
// not-yet-started queries with ctx.Err() and return promptly.
func TestExecuteBatchCancelledMidway(t *testing.T) {
	g := gen.BarabasiAlbert(300, 5, 12)
	e, err := NewEngine(g, EngineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var queries []Query
	for i := 1; i < 48; i++ {
		queries = append(queries, Query{S: 0, T: VertexID(i), K: 8})
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	opts := Options{Emit: func([]VertexID) bool {
		once.Do(cancel)
		return true
	}}
	_, errs, _ := e.ExecuteBatch(ctx, queries, opts)
	cancelled := 0
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no query observed the cancellation")
	}
}

// TestExecuteAllContextCancelDoesNotStallOnSemaphore: regression test for
// the fail-fast dispatch loop — with the pool saturated by a slow query,
// cancellation must not block behind the semaphore acquire.
func TestExecuteAllContextCancelDoesNotStallOnSemaphore(t *testing.T) {
	g := gen.BarabasiAlbert(300, 5, 12)
	e, err := NewEngine(g, EngineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var queries []Query
	for i := 1; i < 48; i++ {
		queries = append(queries, Query{S: 0, T: VertexID(i), K: 8})
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	// The first emitted path cancels the batch while the single worker is
	// mid-query; before the fix the dispatch loop would only notice after
	// the slow query freed its slot.
	opts := Options{Emit: func([]VertexID) bool {
		once.Do(cancel)
		return true
	}}
	_, errs := e.ExecuteAllContext(ctx, queries, opts)
	cancelled := 0
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no query observed the cancellation")
	}
}
