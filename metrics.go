package pathenum

import (
	"sync/atomic"
	"time"

	"pathenum/internal/core"
	"pathenum/internal/mem"
	"pathenum/internal/obs"
)

// MetricsRegistry is the engine's metrics registry (see internal/obs):
// atomic counters, gauges and log-bucketed latency histograms, exported
// in Prometheus text exposition format via its Handler method. Every
// engine owns one — pass a shared registry in EngineConfig.Metrics to
// co-locate HTTP-layer series with the engine's, or let NewEngine create
// a private one and read it back with Engine.Metrics.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry creates an empty registry for EngineConfig.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// metricOp indexes the request-op dimension of the pathenum_requests_total /
// pathenum_request_duration_seconds families: the four public execution
// surfaces. Ints, not label strings, so the request path indexes fixed
// arrays instead of hashing map keys. ExecuteAll rides on opExecute (it
// fans out to ExecuteWith).
type metricOp int

const (
	opExecute metricOp = iota
	opStream
	opBatch
	opStreamBatch
	numOps
)

// opNames are the "op" label values, aligned with the constants.
var opNames = [numOps]string{"execute", "stream", "batch", "stream_batch"}

// metricStage indexes pathenum_stage_duration_seconds. bfs is the
// distance-labeling passes, index_build the light-index construction net
// of BFS, optimize the estimator + plan selection, enumerate the whole
// enumeration phase; join_build / join_probe split enumerate at the
// tuple-at-a-time join's seam (join-planned runs only).
type metricStage int

const (
	stageBFS metricStage = iota
	stageIndex
	stageOptimize
	stageEnumerate
	stageJoinBuild
	stageJoinProbe
	numStages
)

// stageNames are the "stage" label values, aligned with the constants.
var stageNames = [numStages]string{"bfs", "index_build", "optimize", "enumerate", "join_build", "join_probe"}

// engineMetrics holds the engine's pre-resolved metric handles in fixed
// arrays — the request path is array index + atomic, no map hashing. The
// func metrics (cache, pool, graph, write-path gauges) read their owning
// subsystem only at scrape time.
type engineMetrics struct {
	reg *obs.Registry

	requests [numOps]*obs.Counter
	errors   [numOps]*obs.Counter
	latency  [numOps]*obs.Histogram
	// firstPath is time-to-first-path, registered for the ops with a
	// per-path delivery seam (execute with Emit, stream); nil slots for
	// the batch surfaces.
	firstPath [numOps]*obs.Histogram

	stage [numStages]*obs.Histogram

	paths        *obs.Counter
	edges        *obs.Counter
	invalid      *obs.Counter
	incomplete   *obs.Counter
	batchQueries *obs.Counter

	// memFallbacks counts join-planned runs demoted to DFS by the memory
	// budget's build-side admission test (Result.MemFallback).
	memFallbacks *obs.Counter

	inserts   *obs.Counter
	publishes *obs.Counter
	// publishLag observes, at each snapshot publish, how long the oldest
	// buffered insertion waited for visibility (SnapshotEvery
	// amortization); the live counterpart is the
	// pathenum_insert_lag_seconds gauge.
	publishLag *obs.Histogram
	// oracleRebuilds / oracleRebuildDur count and time the background
	// oracle rebuilds (OracleLandmarks); the live degraded-window
	// counterpart is the pathenum_oracle_lag_seconds gauge.
	oracleRebuilds   *obs.Counter
	oracleRebuildDur *obs.Histogram

	// stageTick drives the deterministic 1-in-stageSample gate on the
	// stage histograms (see observeRun); the very first run is always
	// observed.
	stageTick atomic.Uint64

	// streamObs is the persistent core.RunObserver handed to every
	// stream's StreamConfig — a field, not a per-request closure, so the
	// stream request path allocates nothing for its metrics.
	streamObs streamObserver
}

// streamObserver adapts engineMetrics to the core.RunObserver seam for
// the stream surface.
type streamObserver struct{ m *engineMetrics }

// ObserveStream records one settled stream run. Terminal-error streams
// never reach this seam (core yields the error instead of a Result);
// they are counted by the stream's own yield loop.
func (o streamObserver) ObserveStream(res *core.Result, firstPath, total time.Duration) {
	m := o.m
	m.latency[opStream].Observe(total)
	if firstPath > 0 {
		m.firstPath[opStream].Observe(firstPath)
	}
	m.observeRun(res)
}

// stageSample is the run-sampling rate of the per-stage histograms: one
// run in stageSample folds its stage breakdown in, so four histogram
// observes leave the per-request path while quantiles still converge at
// any realistic request rate. The rate is exported as
// pathenum_stage_sample_rate for dashboards that want absolute stage
// counts. Latency, TTFP and every counter stay exact.
const stageSample = 8

// newEngineMetrics registers the engine's series on reg and wires the
// scrape-time func metrics to e. Registration is idempotent, so engines
// sharing a registry (unusual, but legal) share series.
func newEngineMetrics(reg *obs.Registry, e *Engine) *engineMetrics {
	m := &engineMetrics{reg: reg}
	m.streamObs = streamObserver{m: m}
	for op := metricOp(0); op < numOps; op++ {
		name := opNames[op]
		m.requests[op] = reg.Counter(obs.L("pathenum_requests_total", "op", name),
			"Requests accepted, by execution surface.")
		m.errors[op] = reg.Counter(obs.L("pathenum_request_errors_total", "op", name),
			"Requests that ended with a terminal error, by execution surface.")
		m.latency[op] = reg.Histogram(obs.L("pathenum_request_duration_seconds", "op", name),
			"End-to-end request latency, by execution surface.")
	}
	for _, op := range []metricOp{opExecute, opStream} {
		m.firstPath[op] = reg.Histogram(obs.L("pathenum_first_path_seconds", "op", opNames[op]),
			"Time from request start to the first delivered path.")
	}
	for st := metricStage(0); st < numStages; st++ {
		m.stage[st] = reg.Histogram(obs.L("pathenum_stage_duration_seconds", "stage", stageNames[st]),
			"Per-run execution stage latency.")
	}
	m.paths = reg.Counter("pathenum_paths_emitted_total", "Result paths enumerated across all runs.")
	m.edges = reg.Counter("pathenum_edges_accessed_total", "Neighbor-list entries scanned across all runs.")
	m.invalid = reg.Counter("pathenum_invalid_partials_total", "Partial results whose subtree produced no path.")
	m.incomplete = reg.Counter("pathenum_runs_incomplete_total",
		"Runs stopped early by limit, timeout or consumer cancellation.")
	m.batchQueries = reg.Counter("pathenum_batch_queries_total", "Queries submitted through the batch surfaces.")

	m.memFallbacks = reg.Counter("pathenum_mem_join_fallbacks_total",
		"Join-planned runs demoted to DFS because the predicted build side exceeded the memory budget.")
	m.inserts = reg.Counter("pathenum_inserts_total", "Edges applied through the engine write path.")
	m.publishes = reg.Counter("pathenum_snapshots_published_total",
		"Serving-snapshot publishes from the engine write path.")
	m.publishLag = reg.Histogram("pathenum_insert_publish_lag_seconds",
		"Age of the oldest buffered insertion at each snapshot publish.")
	m.oracleRebuilds = reg.Counter("pathenum_oracle_rebuilds_total",
		"Background distance-oracle rebuilds completed.")
	m.oracleRebuildDur = reg.Histogram("pathenum_oracle_rebuild_seconds",
		"Background distance-oracle rebuild duration.")
	reg.GaugeFunc("pathenum_stage_sample_rate",
		"Run-sampling rate of the stage histograms (1 run in N is observed).",
		func() float64 { return stageSample })

	if e.cache != nil {
		cs := func(read func(FrontierCacheStats) float64) func() float64 {
			return func() float64 { return read(e.cache.Stats()) }
		}
		reg.CounterFunc("pathenum_frontier_cache_hits_total", "Frontier-cache lookup hits.",
			cs(func(s FrontierCacheStats) float64 { return float64(s.Hits) }))
		reg.CounterFunc("pathenum_frontier_cache_misses_total", "Frontier-cache lookup misses.",
			cs(func(s FrontierCacheStats) float64 { return float64(s.Misses) }))
		reg.CounterFunc("pathenum_frontier_cache_evictions_total", "Frontier-cache capacity evictions.",
			cs(func(s FrontierCacheStats) float64 { return float64(s.Evictions) }))
		reg.CounterFunc("pathenum_frontier_cache_invalidations_total", "Frontier-cache lazy epoch invalidations.",
			cs(func(s FrontierCacheStats) float64 { return float64(s.Invalidations) }))
		reg.GaugeFunc("pathenum_frontier_cache_entries", "Frontier-cache resident entries.",
			cs(func(s FrontierCacheStats) float64 { return float64(s.Entries) }))
		reg.GaugeFunc("pathenum_frontier_cache_capacity", "Frontier-cache entry bound.",
			cs(func(s FrontierCacheStats) float64 { return float64(s.Capacity) }))
		reg.GaugeFunc("pathenum_frontier_cache_bytes", "Frontier-cache resident bytes.",
			cs(func(s FrontierCacheStats) float64 { return float64(s.Bytes) }))
		reg.CounterFunc("pathenum_mem_deposits_rejected_total",
			"Frontier deposits refused by the cache byte bound or the memory budget.",
			cs(func(s FrontierCacheStats) float64 { return float64(s.Rejected) }))
	}
	if e.budget != nil {
		// The pathenum_mem_* family mirrors Engine.MemStats at scrape
		// time: the effective budget, total accounted bytes and the
		// per-class split. pathenum_mem_bytes staying under
		// pathenum_mem_budget_bytes is the acceptance signal benchpath mem
		// watches.
		reg.GaugeFunc("pathenum_mem_budget_bytes",
			"Effective memory budget (configured MemoryBudgetBytes floored at the session scratch requirement).",
			func() float64 { return float64(e.budget.Limit()) })
		reg.GaugeFunc("pathenum_mem_bytes", "Bytes currently accounted against the memory budget.",
			func() float64 { return float64(e.budget.Used()) })
		reg.GaugeFunc("pathenum_mem_cache_bytes", "Budgeted bytes held by frontier-cache entries.",
			func() float64 { return float64(e.budget.ClassBytes(mem.ClassCache)) })
		reg.GaugeFunc("pathenum_mem_scratch_bytes", "Budgeted bytes held by pooled per-session scratch.",
			func() float64 { return float64(e.budget.ClassBytes(mem.ClassScratch)) })
		reg.GaugeFunc("pathenum_mem_build_bytes", "Budgeted bytes held by in-flight join build sides.",
			func() float64 { return float64(e.budget.ClassBytes(mem.ClassBuild)) })
	}
	reg.GaugeFunc("pathenum_pool_workers", "Configured query-executor workers.",
		func() float64 { return float64(e.workers) })
	reg.GaugeFunc("pathenum_pool_inflight_queries", "Single-query executions currently running.",
		func() float64 { return float64(e.inFlight.Load()) })
	reg.GaugeFunc("pathenum_pool_inflight_shards", "Parallel enumeration shards currently fanned out.",
		func() float64 { return float64(e.inShards.Load()) })
	reg.GaugeFunc("pathenum_pool_utilization", "In-flight load over the worker count (0..1+).",
		func() float64 { return e.PoolStats().Utilization() })
	reg.GaugeFunc("pathenum_graph_epoch", "Mutation count of the serving graph's lineage.",
		func() float64 { return float64(e.Epoch()) })
	reg.GaugeFunc("pathenum_graph_vertices", "Vertices in the serving graph.",
		func() float64 { return float64(e.Graph().NumVertices()) })
	reg.GaugeFunc("pathenum_graph_edges", "Edges in the serving graph.",
		func() float64 { return float64(e.Graph().NumEdges()) })
	reg.GaugeFunc("pathenum_pending_writes", "Insertions applied but not yet published to queries.",
		func() float64 { return float64(e.PendingWrites()) })
	reg.GaugeFunc("pathenum_insert_lag_seconds",
		"Age of the oldest insertion awaiting a snapshot publish (0 when none).",
		func() float64 {
			oldest := e.oldestPendingNs.Load()
			if oldest == 0 {
				return 0
			}
			return time.Since(time.Unix(0, oldest)).Seconds()
		})
	reg.GaugeFunc("pathenum_oracle_lag_seconds",
		"How long the engine has served without a fresh oracle while a background rebuild is owed (0 when current).",
		func() float64 { return e.OracleLag().Seconds() })
	return m
}

// observeOracleRebuild records one completed background oracle rebuild.
func (m *engineMetrics) observeOracleRebuild(d time.Duration) {
	m.oracleRebuilds.Inc()
	m.oracleRebuildDur.Observe(d)
}

// finish records one settled request: end-to-end latency, the error/
// incomplete outcome, time-to-first-path when the op delivered one
// (firstPath > 0), and the per-stage breakdown from the run's own
// timings. res may be nil (terminal error before a run existed).
func (m *engineMetrics) finish(op metricOp, res *core.Result, err error, start time.Time, firstPath time.Duration) {
	m.latency[op].Observe(time.Since(start))
	if err != nil {
		m.errors[op].Inc()
	}
	if firstPath > 0 {
		if h := m.firstPath[op]; h != nil {
			h.Observe(firstPath)
		}
	}
	m.observeRun(res)
}

// observeRun folds one run's Result into the enumeration counters
// (exact) and, for one run in stageSample, the stage histograms. The
// run already collected its own timings, so this is pure post-hoc
// accounting — the core hot loops see no clocks beyond the ones they
// always carried.
func (m *engineMetrics) observeRun(res *core.Result) {
	if res == nil {
		return
	}
	if m.stageTick.Add(1)&(stageSample-1) == 1 { // run 1, 9, 17, ...
		t := res.Timings
		m.stage[stageBFS].Observe(t.BFS)
		m.stage[stageIndex].Observe(t.Build - t.BFS)
		m.stage[stageOptimize].Observe(t.Optimize)
		m.stage[stageEnumerate].Observe(t.Enumerate)
		if res.Plan.Method == core.MethodJoin {
			m.stage[stageJoinBuild].Observe(res.JoinStats.BuildTime)
			m.stage[stageJoinProbe].Observe(res.JoinStats.ProbeTime)
		}
	}
	m.paths.Add(res.Counters.Results)
	m.edges.Add(res.Counters.EdgesAccessed)
	m.invalid.Add(res.Counters.InvalidPartials)
	if res.MemFallback {
		m.memFallbacks.Inc()
	}
	if !res.Completed {
		m.incomplete.Inc()
	}
}

// Metrics returns the engine's metrics registry — the one passed in
// EngineConfig.Metrics, or the private registry NewEngine created. Mount
// Metrics().Handler() at GET /metrics to expose it.
func (e *Engine) Metrics() *MetricsRegistry { return e.metrics.reg }
