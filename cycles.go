package pathenum

import "fmt"

// CyclesThroughEdge enumerates the hop-constrained cycles that pass through
// the directed edge (from, to): each result is a cycle of at most k edges
// written as (to, ..., from, to)-style vertex list starting and ending at
// `to`. Following the e-commerce fraud-detection pattern of §1, the cycles
// triggered by a newly inserted edge e(v,v') are exactly the q(v', v, k-1)
// paths closed by e, so this is implemented as one PathEnum query.
//
// The edge (from, to) must exist in g. Emitted slices are reused between
// calls; copy to retain.
func CyclesThroughEdge(g *Graph, from, to VertexID, k int, opts Options) (*Result, error) {
	if k < 2 {
		return nil, fmt.Errorf("pathenum: cycle hop constraint %d must be >= 2", k)
	}
	if !g.HasEdge(from, to) {
		return nil, fmt.Errorf("pathenum: edge (%d,%d) not in graph", from, to)
	}
	userEmit := opts.Emit
	var cycle []VertexID
	opts.Emit = nil
	if userEmit != nil {
		opts.Emit = func(p []VertexID) bool {
			// p is a path to -> ... -> from; close it with the edge.
			cycle = append(cycle[:0], p...)
			cycle = append(cycle, to)
			return userEmit(cycle)
		}
	}
	q := Query{S: to, T: from, K: k - 1}
	return Enumerate(g, q, opts)
}

// CountCyclesThroughEdge counts hop-constrained cycles through (from, to).
func CountCyclesThroughEdge(g *Graph, from, to VertexID, k int) (uint64, error) {
	res, err := CyclesThroughEdge(g, from, to, k, Options{})
	if err != nil {
		return 0, err
	}
	return res.Counters.Results, nil
}
