// Benchmarks for intra-query parallel enumeration: drain throughput and
// time-to-first-path of Engine.Stream at several fan-outs, against the
// sequential run on the same heavy-fanout workload. CI uploads these
// (BENCH_parallel.json) alongside the stream and batch artifacts.
//
// The acceptance bars are multi-core properties: the sub-benchmarks are
// labeled p1/p2/p4 so the CI artifact pins the drain speedup (p4 vs p1)
// and the first-path tax (parallel within 1.2x of sequential) per commit.
package pathenum

import (
	"context"
	"iter"
	"testing"
)

// benchParallelEngine serves the heavy-fanout workload: a 4-wide, 9-deep
// layered DAG with 4^9 ≈ 262k result paths behind a 4-worker engine. The
// enumeration phase dominates end-to-end time by orders of magnitude over
// the per-query index build, so sharding it is where the wall-clock goes.
func benchParallelEngine(b *testing.B) (*Engine, Query) {
	b.Helper()
	width, depth := 4, 9
	n := 2 + width*depth
	var edges []Edge
	layer := func(l, i int) VertexID { return VertexID(1 + l*width + i) }
	for i := 0; i < width; i++ {
		edges = append(edges, Edge{From: 0, To: layer(0, i)})
		edges = append(edges, Edge{From: layer(depth-1, i), To: VertexID(n - 1)})
	}
	for l := 0; l+1 < depth; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				edges = append(edges, Edge{From: layer(l, i), To: layer(l+1, j)})
			}
		}
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(g, EngineConfig{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	return e, Query{S: 0, T: VertexID(n - 1), K: depth + 1}
}

// BenchmarkParallelDrain drains the full ~262k-path stream at fan-out 1,
// 2 and 4. The acceptance bar: p4 at least 2x faster than p1 on a
// 4-core runner (single-core runners degrade gracefully to ~1x — the
// chunked merge keeps coordination overhead amortized either way).
func BenchmarkParallelDrain(b *testing.B) {
	e, q := benchParallelEngine(b)
	ctx := context.Background()
	for _, par := range []int{1, 2, 4} {
		b.Run(benchParLabel(par), func(b *testing.B) {
			req := NewRequest(q)
			req.Parallelism = par
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				for _, err := range e.Stream(ctx, req) {
					if err != nil {
						b.Fatal(err)
					}
					n++
				}
				if n == 0 {
					b.Fatal("no paths")
				}
			}
		})
	}
}

// BenchmarkParallelFirstPath measures time-to-first-path with the fan-out
// on: open an unbuffered parallel stream, pull one path, stop. The
// acceptance bar: p4 within 1.2x of p1 — the first chunk flushes at size
// one, so fanning out must not tax the latency the streaming API exists
// to deliver.
func BenchmarkParallelFirstPath(b *testing.B) {
	e, q := benchParallelEngine(b)
	ctx := context.Background()
	for _, par := range []int{1, 4} {
		b.Run(benchParLabel(par), func(b *testing.B) {
			req := NewRequest(q)
			req.Parallelism = par
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next, stop := iter.Pull2(e.Stream(ctx, req))
				p, err, ok := next()
				if !ok || err != nil || len(p) == 0 {
					b.Fatalf("first pull: ok=%v err=%v", ok, err)
				}
				stop()
			}
		})
	}
}

func benchParLabel(par int) string {
	return "p" + string(rune('0'+par))
}
