// Package pathenum is a Go implementation of PathEnum (Sun, Chen, He,
// Hooi — SIGMOD 2021): real-time hop-constrained s-t path enumeration.
//
// Given a directed graph G, two vertices s and t and a hop constraint k,
// PathEnum enumerates every simple path from s to t with at most k edges.
// For each query it builds a light-weight query-dependent index from the
// distances of every vertex to s and t, then either runs a depth-first
// search directly on the index or splits the query at a cost-optimized cut
// position and joins the two halves, choosing between the two with a
// two-phase cardinality estimator.
//
// Basic usage:
//
//	g, err := pathenum.NewGraph(4, []pathenum.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 0, To: 2}, {From: 2, To: 3}})
//	...
//	res, err := pathenum.Enumerate(g, pathenum.Query{S: 0, T: 3, K: 3}, pathenum.Options{
//		Emit: func(p []pathenum.VertexID) bool { fmt.Println(p); return true },
//	})
//
// The streaming-first surface delivers paths incrementally instead of
// buffering or calling back: a Request bundles the query with its
// constraints and per-request options, and Stream / Engine.Stream return
// a Go 1.23 range-over-func iterator whose first paths arrive while
// enumeration is still running:
//
//	for path, err := range eng.Stream(ctx, pathenum.Request{S: 0, T: 3, K: 3}) {
//		...
//	}
//
// Enumerate, Paths, Count and the Engine's Execute methods remain as
// documented wrappers over the same executor spine.
//
// Query batches should run through the Engine: ExecuteAllContext fans
// queries out independently across a worker pool, and ExecuteBatch routes
// them through the shared-computation batch subsystem (internal/batch),
// which deduplicates identical queries and reuses one BFS distance
// frontier across all queries sharing a source or target — the dominant
// index-construction cost on batch workloads; Engine.StreamBatch is its
// streaming variant, flushing per-query results as groups complete. On
// mutating graphs the engine owns the write path: Engine.Insert applies
// edges to an engine-owned Dynamic, publishes snapshots amortized by
// EngineConfig.SnapshotEvery and keeps derived structures (frontier
// cache, distance oracle) epoch-consistent — streaming while updating is
// a first-class, version-enforced scenario.
//
// The package also implements the paper's constraint extensions (edge
// predicates, accumulative values, label-sequence automata), dynamic-graph
// workflows, every baseline from the paper's evaluation and a benchmark
// harness that regenerates each of its tables and figures; see DESIGN.md
// and EXPERIMENTS.md.
package pathenum

import (
	"context"
	"io"

	"pathenum/internal/automaton"
	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// Re-exported graph types. Vertices are dense int32 ids in [0, n).
type (
	// Graph is an immutable directed graph in CSR form.
	Graph = graph.Graph
	// Edge is a directed edge From -> To.
	Edge = graph.Edge
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Dynamic is an insertion-only dynamic graph wrapper; every
	// successful Insert bumps its epoch and snapshots carry the version.
	Dynamic = graph.Dynamic
	// GraphVersion is a graph's (lineage, epoch) identity; derived
	// structures (frontiers, oracles) are validated against it.
	GraphVersion = graph.Version
	// Versioned is the epoch/version surface shared by Graph and Dynamic.
	Versioned = graph.Versioned
)

// Version-enforcement errors, matched with errors.Is.
var (
	// ErrStaleEpoch reports a frontier or oracle built on an earlier
	// epoch of a mutating graph: rebuild it (or refresh the engine with
	// UpdateGraph) instead of trusting stale distance labels.
	ErrStaleEpoch = graph.ErrStaleEpoch
	// ErrGraphMismatch reports a frontier or oracle built on an
	// unrelated graph.
	ErrGraphMismatch = graph.ErrGraphMismatch
)

// Re-exported query types.
type (
	// Query is a HcPE query q(s,t,k).
	Query = core.Query
	// Options configures one query execution.
	Options = core.Options
	// Result reports the outcome of one query execution.
	Result = core.Result
	// Method selects the enumeration algorithm.
	Method = core.Method
	// Counters carries the enumeration cost metrics.
	Counters = core.Counters
	// RunControl bounds a low-level enumeration run.
	RunControl = core.RunControl
	// Plan records the optimizer's decision.
	Plan = core.Plan
)

// Re-exported constraint types (Appendix E extensions).
type (
	// Constraints bundles the optional query extensions.
	Constraints = core.Constraints
	// EdgePredicate filters edges.
	EdgePredicate = core.EdgePredicate
	// PredicateToken is the caller-declared identity of an EdgePredicate,
	// required for frontier sharing and caching (see core.PredicateToken).
	PredicateToken = core.PredicateToken
	// Accumulator is an accumulative-value constraint.
	Accumulator = core.Accumulator
	// SequenceConstraint is a label-sequence (automaton) constraint.
	SequenceConstraint = core.SequenceConstraint
	// DFA is the constraint automaton.
	DFA = automaton.DFA
	// Label is an edge action label.
	Label = automaton.Label
	// State is an automaton state.
	State = automaton.State
)

// Enumeration methods.
const (
	// Auto lets the cost-based optimizer choose (the full PathEnum).
	Auto = core.MethodAuto
	// DFS forces the index depth-first search (IDX-DFS).
	DFS = core.MethodDFS
	// Join forces the index join (IDX-JOIN).
	Join = core.MethodJoin
)

// DefaultTau is the preliminary-estimate threshold of the optimizer.
const DefaultTau = core.DefaultTau

// PredicateNone is the PredicateToken of the nil predicate.
const PredicateNone = core.PredicateNone

// NewGraph builds a graph with n vertices from an edge list. Self-loops
// are dropped and duplicate edges collapsed.
func NewGraph(n int, edges []Edge) (*Graph, error) { return graph.NewGraph(n, edges) }

// LoadGraph reads an edge-list graph file (SNAP-style "<from> <to>" lines;
// '#'/'%' comments) with vertex ids remapped to a dense range.
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes g to path in edge-list format.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// ReadGraph parses an edge list from r; the second result maps dense ids
// back to the original ids.
func ReadGraph(r io.Reader) (*Graph, []int64, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes g to w in edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// NewDynamic wraps a base graph for incremental edge insertion.
func NewDynamic(base *Graph) *Dynamic { return graph.NewDynamic(base) }

// Enumerate executes q on g: index construction, plan selection and
// enumeration. Paths stream through opts.Emit; the returned Result carries
// counts, the chosen plan, per-phase timings and index statistics.
func Enumerate(g *Graph, q Query, opts Options) (*Result, error) {
	return core.Run(g, q, opts)
}

// EnumerateContext is Enumerate observing ctx: cancelling the context (or
// hitting its deadline) stops the enumeration early and the Result reports
// Completed == false. The check is amortized over expansion events, so a
// heavy query returns promptly after cancellation without paying a per-node
// polling cost. Repeated queries against one graph should prefer
// Engine.ExecuteWith, which adds session buffer reuse on top.
func EnumerateContext(ctx context.Context, g *Graph, q Query, opts Options) (*Result, error) {
	return core.RunContext(ctx, g, q, opts)
}

// Count returns |P(s,t,k,G)| using the full optimizer.
func Count(g *Graph, q Query) (uint64, error) { return core.Count(g, q) }

// Paths materializes all result paths — a collecting consumer of the path
// stream (see Stream). The limit argument caps the number collected
// (0 = unlimited); result sets grow exponentially with k, so prefer
// Stream (incremental delivery) or Enumerate with an Emit callback for
// heavy queries.
func Paths(g *Graph, q Query, limit uint64) ([][]VertexID, error) {
	req := NewRequest(q)
	req.Limit = limit
	var out [][]VertexID
	for p, err := range Stream(context.Background(), g, req) {
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// EnumerateConstrained executes q under the Appendix-E constraint
// extensions with the constrained index DFS.
func EnumerateConstrained(g *Graph, q Query, cons Constraints, ctl RunControl) (*Result, error) {
	return core.RunConstrained(g, q, cons, ctl)
}

// NewDFA creates a constraint automaton with the given state and label
// counts and start state.
func NewDFA(numStates, numLabels int, start State) (*DFA, error) {
	return automaton.New(numStates, numLabels, start)
}

// ExactSequenceDFA builds a DFA accepting exactly the given label sequence.
func ExactSequenceDFA(numLabels int, seq []Label) (*DFA, error) {
	return automaton.ExactSequence(numLabels, seq)
}

// AtLeastCountDFA builds a DFA accepting sequences with at least m
// occurrences of label.
func AtLeastCountDFA(numLabels int, label Label, m int) (*DFA, error) {
	return automaton.AtLeastCount(numLabels, label, m)
}
