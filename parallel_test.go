package pathenum

import (
	"context"
	"iter"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"pathenum/internal/gen"
)

// parallelTestEngine wraps a layered big-result graph in a 4-worker engine —
// enough fan-out room for Request.Parallelism to actually shard.
func parallelTestEngine(t *testing.T, width, depth int) (*Engine, Query) {
	t.Helper()
	g, q := layeredTestGraph(t, width, depth)
	e, err := NewEngine(g, EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return e, q
}

// TestEngineStreamParallelMatchesSequential: a parallel engine stream
// delivers exactly the sequential path set — unbuffered and buffered, at
// several fan-outs — and the aggregated Result counts agree.
func TestEngineStreamParallelMatchesSequential(t *testing.T) {
	e, q := parallelTestEngine(t, 4, 4) // 256 paths
	collect := func(par, buffer int) ([]string, *Result) {
		req := NewRequest(q)
		req.Parallelism = par
		req.Buffer = buffer
		var res *Result
		req.OnResult = func(r *Result) { res = r }
		var keys []string
		for p, err := range e.Stream(context.Background(), req) {
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, keyOfPath(p))
		}
		sort.Strings(keys)
		return keys, res
	}
	seq, seqRes := collect(0, 0)
	if len(seq) != 256 || seqRes == nil || !seqRes.Completed {
		t.Fatalf("sequential: %d paths, res %+v", len(seq), seqRes)
	}
	for _, par := range []int{2, 4} {
		for _, buffer := range []int{0, 8} {
			got, res := collect(par, buffer)
			if len(got) != len(seq) {
				t.Fatalf("par=%d buffer=%d: %d paths, want %d", par, buffer, len(got), len(seq))
			}
			for i := range seq {
				if got[i] != seq[i] {
					t.Fatalf("par=%d buffer=%d: path set diverges at %d: %q vs %q",
						par, buffer, i, got[i], seq[i])
				}
			}
			if res == nil || !res.Completed || res.Counters.Results != seqRes.Counters.Results {
				t.Fatalf("par=%d buffer=%d: result %+v, want Results=%d Completed",
					par, buffer, res, seqRes.Counters.Results)
			}
		}
	}
}

// TestParallelStreamAbandonNoGoroutineLeak: breaking out of a parallel
// stream mid-iteration — unbuffered and buffered — must wind down every
// shard and merger goroutine. Repeated abandonment amplifies any leak.
func TestParallelStreamAbandonNoGoroutineLeak(t *testing.T) {
	e, q := parallelTestEngine(t, 5, 5) // 3125 paths: shards still running at abandonment
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		for _, buffer := range []int{0, 4} {
			req := NewRequest(q)
			req.Parallelism = 4
			req.Buffer = buffer
			n := 0
			for _, err := range e.Stream(context.Background(), req) {
				if err != nil {
					t.Fatal(err)
				}
				if n++; n == 2 {
					break
				}
			}
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("%d goroutines after abandoned parallel streams, was %d", now, before)
	}
}

// TestParallelStreamWhileInsert: parallel streams racing Insert/Flush. Each
// stream captures a snapshot at its first pull and must finish on it —
// sharded enumeration included — while the writer advances the engine.
// Run under -race in CI.
func TestParallelStreamWhileInsert(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 91)
	e, err := NewEngine(g, EngineConfig{Workers: 4, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{S: 7, T: 0, K: 4}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		to := VertexID(100)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.Insert(7, to); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			if i%16 == 15 {
				if err := e.Flush(); err != nil {
					t.Errorf("flush: %v", err)
					return
				}
			}
			if to++; to == 200 {
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := NewRequest(q)
				req.Parallelism = 4
				if r%2 == 1 {
					req.Buffer = 4
				}
				for p, serr := range e.Stream(context.Background(), req) {
					if serr != nil {
						t.Errorf("reader %d: %v", r, serr)
						return
					}
					if len(p) < 2 || p[0] != q.S || p[len(p)-1] != q.T {
						t.Errorf("reader %d: malformed path %v", r, p)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	<-writerDone
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestEnginePoolStatsDuringParallelStream: the pool gauges track a live
// parallel stream — one in-flight query, Parallelism shards — and return
// to zero once the stream is released.
func TestEnginePoolStatsDuringParallelStream(t *testing.T) {
	e, q := parallelTestEngine(t, 4, 4)
	if ps := e.PoolStats(); ps.Workers != 4 || ps.InFlightQueries != 0 || ps.InFlightShards != 0 {
		t.Fatalf("idle pool = %+v", ps)
	}
	req := NewRequest(q)
	req.Parallelism = 4
	next, stopStream := iter.Pull2(e.Stream(context.Background(), req))
	if _, err, ok := next(); !ok || err != nil {
		t.Fatalf("first pull: ok=%v err=%v", ok, err)
	}
	ps := e.PoolStats()
	if ps.InFlightQueries != 1 || ps.InFlightShards != 4 {
		t.Fatalf("mid-stream pool = %+v, want 1 query / 4 shards", ps)
	}
	if ps.Utilization() != 1 {
		t.Fatalf("mid-stream utilization = %v, want 1 (4 shards / 4 workers)", ps.Utilization())
	}
	stopStream()
	if ps := e.PoolStats(); ps.InFlightQueries != 0 || ps.InFlightShards != 0 {
		t.Fatalf("post-stream pool = %+v, want zero gauges", ps)
	}
}

// TestMergeOptionsParallelismCap: a request's fan-out is capped at the
// engine's worker count, and inherits the engine default when unset.
func TestMergeOptionsParallelismCap(t *testing.T) {
	g, _ := layeredTestGraph(t, 2, 2)
	e, err := NewEngine(g, EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.MergeOptions(Options{Parallelism: 8}).Parallelism; got != 2 {
		t.Fatalf("merged Parallelism = %d, want cap at 2 workers", got)
	}
	if got := e.MergeOptions(Options{Parallelism: 2}).Parallelism; got != 2 {
		t.Fatalf("merged Parallelism = %d, want 2 untouched", got)
	}
	e2, err := NewEngine(g, EngineConfig{Workers: 4, Options: Options{Parallelism: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.MergeOptions(Options{}).Parallelism; got != 3 {
		t.Fatalf("inherited Parallelism = %d, want engine default 3", got)
	}
}
